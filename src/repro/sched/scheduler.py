"""Throughput scheduler dispatching job streams across N OCPs.

The scheduler is a :class:`~repro.sim.kernel.Component` living *inside*
the simulated clock: per-OCP dispatch is a small state machine that
configures bank registers over the bus one write at a time, arms
CTRL.S|IE, sleeps on the coprocessor's IRQ line, reads CTRL back to
separate completion from a trap, and acknowledges -- exactly the
sequence a bare-metal interrupt-driven runtime performs, but for many
coprocessors concurrently behind one arbiter.

Routing goes through the kernel-capability table (kind -> serving
OCPs) and a pluggable fairness policy; per-OCP queues are bounded and
``submit`` exerts back-pressure by returning ``False`` when every
eligible queue is full.  Trapped batches (e.g. a watchdog timeout under
an injected execution hang) are aborted with the driver recipe --
CTRL=0, soft reset, IRQ clear -- and retried after an exponential
backoff.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..bus.types import AccessKind, BusRequest, BusTransfer
from ..core.registers import (
    CTRL_E,
    CTRL_IE,
    CTRL_S,
    ERR_MASK,
    ERR_SHIFT,
    REG_BANK_BASE,
    REG_CTRL,
    REG_PROG_SIZE,
)
from ..sim.errors import ConfigurationError, ReproError
from ..sim.kernel import Component
from ..verify.diagnostics import (
    Finding,
    VerifyReport,
    has_error_findings,
)
from .batch import Batch, compose_batch
from .capability import CapabilityTable
from .job import Job, JobResult

#: scheduler-owned RAM region: per-OCP program/input/output arenas,
#: well clear of the low-RAM addresses the driver examples use
SCHED_ARENA_BASE_OFFSET = 0x0020_0000
SCHED_ARENA_STRIDE = 0x0004_0000
ARENA_WORDS = 0x0001_0000 // 4

#: back-off growth cap: retries never sleep longer than this
MAX_BACKOFF_CYCLES = 1 << 14


class SchedulerError(ReproError):
    """A job stream could not be completed (unrecoverable trap)."""


class RaceHazardError(SchedulerError):
    """Submission refused: the job may race a pending job (OU2xx).

    Raised by :meth:`ThroughputScheduler.submit` under
    ``racecheck="submit"`` when :mod:`repro.racelint` reports an
    error-severity hazard between the new job and the jobs already
    queued or in flight.
    """


class SlaRejectionError(SchedulerError):
    """Submission refused at admission time: the SLA cannot be met.

    Raised by :meth:`ThroughputScheduler.submit` when ``sla_cycles``
    is configured and, on every eligible OCP, the predicted backlog
    plus the job's worst-case cost bound (OU304 semantics, from
    :mod:`repro.perfbound`) exceeds the budget.
    """


class _OcpSlot:
    """Per-OCP dispatch state (queue + in-flight batch FSM)."""

    __slots__ = (
        "index", "ocp", "reg_base", "prog_base", "in_base", "out_base",
        "max_job_words", "queue", "state", "batch", "writes", "transfer",
        "resume_at", "jobs_done", "batches_done", "retries", "busy_cycles",
        "queue_high_water", "master",
    )

    def __init__(self, index: int, ocp, reg_base: int, arena: int) -> None:
        self.index = index
        self.ocp = ocp
        self.reg_base = reg_base
        self.prog_base = arena
        self.in_base = arena + 0x1_0000
        self.out_base = arena + 0x2_0000
        # a whole job's output must fit in the out FIFO: the batched
        # program interleaves push/start/drain per job, so a job larger
        # than the drainless FIFO capacity could deadlock the engine
        self.max_job_words = min(ocp.fifos_out[0].depth, ARENA_WORDS)
        self.queue: Deque[Tuple[Job, int]] = deque()
        self.state = "idle"
        self.batch: Optional[Batch] = None
        self.writes: List[Tuple[int, int]] = []
        self.transfer: Optional[BusTransfer] = None
        self.resume_at = 0
        self.jobs_done = 0
        self.batches_done = 0
        self.retries = 0
        self.busy_cycles = 0
        self.queue_high_water = 0
        self.master = f"sched{index}"


class SchedulingPolicy:
    """Chooses a target among the eligible slots that have queue space."""

    name = "policy"

    def pick(self, job: Job, slots: List[_OcpSlot]) -> _OcpSlot:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate over the serving OCPs, per kernel kind."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def pick(self, job: Job, slots: List[_OcpSlot]) -> _OcpSlot:
        turn = self._counters.get(job.kind, 0)
        self._counters[job.kind] = turn + 1
        return slots[turn % len(slots)]


class ShortestQueuePolicy(SchedulingPolicy):
    """Send each job to the least-loaded serving OCP (ties: lowest index)."""

    name = "shortest-queue"

    def pick(self, job: Job, slots: List[_OcpSlot]) -> _OcpSlot:
        def load(slot: _OcpSlot) -> Tuple[int, int]:
            in_flight = len(slot.batch.jobs) if slot.batch else 0
            return (len(slot.queue) + in_flight, slot.index)

        return min(slots, key=load)


class CostAwarePolicy(SchedulingPolicy):
    """Route by predicted *cycles*, not job count.

    Shortest-queue treats a 16-word scale and a 256-point DFT as equal
    load; this policy asks :mod:`repro.perfbound` what each pending
    job will actually cost and sends the new job to the OCP with the
    least predicted backlog (ties: lowest index).  Routing only --
    dispatch order and results stay bit-exact vs the sequential
    reference.
    """

    name = "cost-aware"

    def __init__(self) -> None:
        self._scheduler: Optional["ThroughputScheduler"] = None

    def bind(self, scheduler: "ThroughputScheduler") -> None:
        self._scheduler = scheduler

    def pick(self, job: Job, slots: List[_OcpSlot]) -> _OcpSlot:
        sched = self._scheduler
        if sched is None:  # pragma: no cover - bind() runs in __init__
            raise ConfigurationError("cost-aware policy is unbound")

        def backlog(slot: _OcpSlot) -> Tuple[int, int]:
            return (sched.pending_cycles(slot.index)
                    + sched.predicted_job_cycles(job, slot), slot.index)

        return min(slots, key=backlog)


_POLICIES = {
    "round-robin": RoundRobinPolicy,
    "shortest-queue": ShortestQueuePolicy,
    "cost-aware": CostAwarePolicy,
}


class ThroughputScheduler(Component):
    """Dispatch a stream of jobs across the SoC's coprocessors.

    Parameters
    ----------
    soc:
        An elaborated :class:`~repro.system.SoC`; the scheduler
        registers itself as a simulation component.
    capability:
        Kind-to-OCP routing table; derived from the SoC when omitted.
        Validated through soclint (OU170/OU171) unless ``validate``
        is off.
    policy:
        ``"round-robin"``, ``"shortest-queue"``, or a
        :class:`SchedulingPolicy` instance.
    queue_bound:
        Per-OCP queue capacity; ``submit`` returns ``False`` (back
        pressure) when every eligible queue is at its bound.
    batch_jobs:
        Max jobs fused into one microcode program per dispatch
        (1 = no batching).
    max_retries:
        Re-dispatch attempts after a trapped batch before
        :class:`SchedulerError` is raised.
    arena_base / arena_stride:
        Base address and per-OCP stride of the staging arenas;
        defaults keep every slot's program/input/output regions
        disjoint.  Overriding them (e.g. to share arenas) is exactly
        the configuration ``racecheck`` exists to vet.
    racecheck:
        Validate-on-submit concurrency checking through
        :mod:`repro.racelint`.  ``"off"``/``False`` (default)
        disables it; ``"submit"``/``True`` makes :meth:`submit` raise
        :class:`RaceHazardError` when the new job may race a pending
        one; ``"warn"`` only records findings in
        :attr:`racecheck_report`.
    sla_cycles:
        Admission-time WCET budget.  When set, :meth:`submit` raises
        :class:`SlaRejectionError` for a job whose predicted backlog
        plus worst-case cost (per :mod:`repro.perfbound`) exceeds the
        budget on every eligible OCP -- the stream stays schedulable
        instead of silently running late.
    """

    def __init__(
        self,
        soc,
        capability: Optional[CapabilityTable] = None,
        policy: "SchedulingPolicy | str" = "round-robin",
        queue_bound: int = 8,
        batch_jobs: int = 1,
        chunk: int = 64,
        max_retries: int = 2,
        backoff_cycles: int = 64,
        validate: bool = True,
        arena_base: Optional[int] = None,
        arena_stride: Optional[int] = None,
        racecheck: "bool | str" = False,
        sla_cycles: Optional[int] = None,
        name: str = "sched",
    ) -> None:
        super().__init__(name)
        if not soc.ocps:
            raise ConfigurationError("scheduler needs at least one OCP")
        if queue_bound < 1:
            raise ConfigurationError("queue_bound must be >= 1")
        if batch_jobs < 1:
            raise ConfigurationError("batch_jobs must be >= 1")
        self._soc = soc
        self.capability = capability or CapabilityTable.from_soc(soc)
        if validate:
            report = self.capability.validate(soc)
            if report.errors:
                raise ConfigurationError(
                    "capability table failed soclint validation:\n"
                    + report.render()
                )
        if isinstance(policy, str):
            try:
                policy = _POLICIES[policy]()
            except KeyError:
                raise ConfigurationError(
                    f"unknown policy {policy!r}; "
                    f"choose from {sorted(_POLICIES)}"
                ) from None
        self.policy = policy
        if hasattr(policy, "bind"):
            policy.bind(self)
        self.sla_cycles = sla_cycles
        self._cost_cache: Dict[
            Tuple[str, int, int], Optional[Tuple[int, int]]
        ] = {}
        self.queue_bound = queue_bound
        self.batch_jobs = batch_jobs
        self.chunk = chunk
        self.max_retries = max_retries
        self.backoff_cycles = backoff_cycles

        from ..system import RAM_BASE
        self.arena_base = (RAM_BASE + SCHED_ARENA_BASE_OFFSET
                           if arena_base is None else arena_base)
        self.arena_stride = (SCHED_ARENA_STRIDE if arena_stride is None
                             else arena_stride)
        mode = {False: "off", True: "submit"}.get(racecheck, racecheck)
        if mode not in ("off", "submit", "warn"):
            raise ConfigurationError(
                "racecheck must be False, True, 'off', 'submit' or "
                f"'warn', not {racecheck!r}"
            )
        self.racecheck = mode
        self.racecheck_report = VerifyReport()
        self._racechecker = None
        self._racechecked: Dict[
            Tuple[str, str, int, Optional[str]], List[Finding]
        ] = {}
        self._slots: Dict[int, _OcpSlot] = {}
        for index in self.capability.indices():
            arena = self.arena_base + index * self.arena_stride
            self._slots[index] = _OcpSlot(
                index, soc.ocps[index], soc.ocp_base(index), arena
            )
        self._chains: Dict[str, int] = {}
        self._pending_meta: Dict[str, Tuple[int, int]] = {}
        self._next_batch_id = 0
        self.submitted = 0
        self.completed: Dict[str, JobResult] = {}
        self.completion_order: List[str] = []
        # a running slot sleeps on its OCP's IRQ line: the edge must
        # re-poll the scheduler under vectorized dispatch
        for slot in self._slots.values():
            slot.ocp.irq.watch(self)
        soc.sim.add(self)

    # -- submission (called from outside the clock) -----------------------
    def _feasible(self, job: Job) -> List[_OcpSlot]:
        """Slots whose RAC can physically run this job."""
        slots = []
        for index in self.capability.serving(job.kind):
            slot = self._slots[index]
            rac = slot.ocp.rac
            appetite = rac.items_in[0] if rac.items_in else 1
            if job.size % max(1, appetite) == 0 and \
                    job.size <= slot.max_job_words:
                slots.append(slot)
        if not slots:
            raise ConfigurationError(
                f"job {job.job_id} ({job.kind}, {job.size} words) fits "
                "no serving OCP (size must be a multiple of the RAC "
                "block size and fit its output FIFO)"
            )
        return slots

    def _route(self, job: Job) -> Optional[List[_OcpSlot]]:
        """Candidate slots with queue space, or ``None`` (back-pressure).

        Chained jobs are pinned: only the chain's home slot qualifies.
        """
        feasible = self._feasible(job)
        if job.chain is not None and job.chain in self._chains:
            home = self._slots[self._chains[job.chain]]
            if home not in feasible:
                raise ConfigurationError(
                    f"chain {job.chain!r} is pinned to OCP {home.index}, "
                    f"which cannot run job {job.job_id}"
                )
            feasible = [home]
        open_slots = [s for s in feasible
                      if len(s.queue) < self.queue_bound]
        return open_slots or None

    def can_accept(self, job: Job) -> bool:
        """Would :meth:`submit` succeed right now?"""
        return self._route(job) is not None

    # -- static race checking ---------------------------------------------
    def _race_checker(self):
        if self._racechecker is None:
            # local import: racelint imports this module for the arena
            # geometry constants
            from ..racelint import RaceChecker, StreamModel
            self._racechecker = RaceChecker(
                StreamModel.from_scheduler(self))
        return self._racechecker

    def _pending_jobs(self) -> List[Job]:
        """Jobs submitted but not yet completed (queued or in flight)."""
        pending: List[Job] = []
        for slot in self._slots.values():
            if slot.batch is not None:
                pending.extend(slot.batch.jobs)
            pending.extend(job for job, _ in slot.queue)
        return pending

    def racecheck_job(self, job: Job) -> List[Finding]:
        """Statically check ``job`` against every pending job.

        Returns the new findings (cached per job id, so back-pressure
        retries do not duplicate them) and accumulates them in
        :attr:`racecheck_report`.  Usable directly even with
        ``racecheck="off"``.
        """
        key = (job.job_id, job.kind, job.size, job.chain)
        cached = self._racechecked.get(key)
        if cached is not None:
            return cached
        findings = self._race_checker().check_submit(
            job, self._pending_jobs())
        self._racechecked[key] = findings
        self.racecheck_report.findings.extend(findings)
        self.racecheck_report.sort()
        return findings

    # -- static cost estimation -------------------------------------------
    def _job_cost_bounds(
        self, job: Job, slot: _OcpSlot
    ) -> "Optional[Tuple[int, int]]":
        """``(mid, hi)`` of the job's predicted cycle cost on ``slot``.

        Bounds the per-job offset program the dispatcher will actually
        stage (see :func:`repro.sched.batch.job_program`) through
        :mod:`repro.perfbound`, against the slot RAC's timing contract
        and the SoC's real bus protocol and memory latency.  ``None``
        when the cost has no static bound.  Cached per
        (kind, size, slot).
        """
        key = (job.kind, job.size, slot.index)
        if key in self._cost_cache:
            return self._cost_cache[key]
        from ..perfbound import CostModel, RacTiming, bound_program
        from ..rac.base import StreamingRAC
        from ..verify.domain import Interval
        from .batch import job_program

        bounds: Optional[Tuple[int, int]] = None
        rac = slot.ocp.rac
        if isinstance(rac, StreamingRAC):
            controller = slot.ocp.controller
            model = CostModel(
                protocol=self._soc.bus.protocol,
                mem_latency=Interval.point(
                    getattr(self._soc.memory, "access_latency", 1)),
                rac=RacTiming.of(rac),
                ibuf_size=controller.ibuf_size,
                prefetch=controller.prefetch,
            )
            program = job_program(job, 0, 0, chunk=self.chunk)
            bound = bound_program(
                list(program.instructions), rac, model=model)
            if bound.bounded:
                lo, hi = int(bound.total.lo), int(bound.total.hi)
                bounds = ((lo + hi) // 2, hi)
        self._cost_cache[key] = bounds
        return bounds

    def predicted_job_cycles(self, job: Job, slot: _OcpSlot) -> int:
        """Midpoint cost estimate, with a size-proportional fallback."""
        bounds = self._job_cost_bounds(job, slot)
        if bounds is not None:
            return bounds[0]
        # unbounded (no streaming contract): words moved still beats
        # counting jobs as 1 each
        return 8 * job.size + 64

    def pending_cycles(self, index: int) -> int:
        """Predicted cycles of everything queued or in flight on an OCP."""
        slot = self._slots[index]
        total = 0
        if slot.batch is not None:
            for job in slot.batch.jobs:
                total += self.predicted_job_cycles(job, slot)
        for job, _ in slot.queue:
            total += self.predicted_job_cycles(job, slot)
        return total

    def _check_sla(self, job: Job, candidates: List[_OcpSlot]) -> None:
        budget = self.sla_cycles
        if budget is None:
            return
        best: Optional[int] = None
        for slot in candidates:
            bounds = self._job_cost_bounds(job, slot)
            if bounds is None:
                continue
            worst = self.pending_cycles(slot.index) + bounds[1]
            best = worst if best is None else min(best, worst)
        if best is None:
            raise SlaRejectionError(
                f"job {job.job_id} ({job.kind}, {job.size} words) has "
                f"no bounded cost on any eligible OCP; an SLA of "
                f"{budget} cycles cannot be guaranteed"
            )
        if best > budget:
            raise SlaRejectionError(
                f"job {job.job_id}: predicted worst-case completion "
                f"{best} cycles exceeds the SLA budget {budget} on "
                "every eligible OCP"
            )

    def submit(self, job: Job) -> bool:
        """Enqueue a job; ``False`` means back-pressure (try later).

        With ``racecheck="submit"``, a job whose static footprint may
        race a queued or in-flight job raises
        :class:`RaceHazardError` instead of being enqueued.  With
        ``sla_cycles`` set, a job that cannot meet the budget raises
        :class:`SlaRejectionError`.
        """
        if job.job_id in self.completed or any(
            queued.job_id == job.job_id
            for slot in self._slots.values() for queued, _ in slot.queue
        ):
            raise ConfigurationError(f"duplicate job id {job.job_id!r}")
        if self.racecheck != "off":
            findings = self.racecheck_job(job)
            if self.racecheck == "submit" and \
                    has_error_findings(findings):
                raise RaceHazardError(
                    f"job {job.job_id} may race pending jobs:\n"
                    + "\n".join(str(f) for f in findings)
                )
        if self.sla_cycles is not None:
            self._check_sla(job, self._feasible(job))
        open_slots = self._route(job)
        if open_slots is None:
            return False
        if len(open_slots) == 1:
            target = open_slots[0]
        else:
            target = self.policy.pick(job, open_slots)
        if job.chain is not None and job.chain not in self._chains:
            self._chains[job.chain] = target.index
        target.queue.append((job, self.now))
        target.queue_high_water = max(
            target.queue_high_water, len(target.queue)
        )
        self.submitted += 1
        return True

    def submit_blocking(self, job: Job, max_cycles: int = 5_000_000) -> None:
        """Submit, advancing the simulation until space frees up."""
        while not self.submit(job):
            self._soc.run_until(
                lambda: self.can_accept(job), max_cycles=max_cycles,
                what=f"queue space for job {job.job_id}",
            )

    def run_stream(
        self, jobs: List[Job], max_cycles: int = 5_000_000,
    ) -> List[JobResult]:
        """Submit a whole stream, drain it, return results in order."""
        for job in jobs:
            self.submit_blocking(job, max_cycles=max_cycles)
        self.drain(max_cycles=max_cycles)
        return [self.completed[job.job_id] for job in jobs]

    def drain(self, max_cycles: int = 5_000_000) -> None:
        """Advance the simulation until every queued job completed."""
        self._soc.run_until(
            lambda: self.idle, max_cycles=max_cycles,
            what="scheduler drain",
        )

    @property
    def idle(self) -> bool:
        return all(
            slot.state == "idle" and not slot.queue
            for slot in self._slots.values()
        )

    @property
    def slots(self) -> List[_OcpSlot]:
        return [self._slots[i] for i in sorted(self._slots)]

    @property
    def soc(self):
        return self._soc

    # -- dispatch state machine (inside the clock) ------------------------
    def tick(self) -> None:
        for slot in self._slots.values():
            if slot.state != "idle":
                slot.busy_cycles += 1
            self._step_slot(slot)

    def on_skip(self, cycles: int) -> None:
        # busy accounting must match the naive stepper: states are
        # frozen across a declared-idle window, so a flat add suffices
        for slot in self._slots.values():
            if slot.state != "idle":
                slot.busy_cycles += cycles

    def next_activity(self) -> Optional[int]:
        wake: Optional[int] = None
        for slot in self._slots.values():
            slot_wake = self._slot_wake(slot)
            if slot_wake is not None:
                wake = slot_wake if wake is None else min(wake, slot_wake)
        return wake

    def _slot_wake(self, slot: _OcpSlot) -> Optional[int]:
        if slot.state == "idle":
            return self.now if slot.queue else None
        if slot.state == "running":
            # the IRQ line can only flip during a ticked cycle
            return self.now if slot.ocp.irq.pending else None
        if slot.state == "backoff":
            return max(slot.resume_at, self.now)
        transfer = slot.transfer
        return self.now if transfer is not None and transfer.done else None

    def _step_slot(self, slot: _OcpSlot) -> None:
        handler = getattr(self, f"_step_{slot.state}")
        handler(slot)

    def _step_idle(self, slot: _OcpSlot) -> None:
        if not slot.queue:
            return
        self._dispatch(slot)

    def _dispatch(self, slot: _OcpSlot) -> None:
        jobs: List[Job] = []
        total = 0
        dispatch_cycles: List[int] = []
        while slot.queue and len(jobs) < self.batch_jobs:
            job, submitted = slot.queue[0]
            # a batch must fit the shared arenas (per-job FIFO fit is
            # already guaranteed at submission time)
            if jobs and total + job.size > ARENA_WORDS:
                break
            slot.queue.popleft()
            jobs.append(job)
            dispatch_cycles.append(submitted)
            total += job.size
        batch = compose_batch(jobs, self._next_batch_id, chunk=self.chunk)
        self._next_batch_id += 1
        batch.attempts = 1
        slot.batch = batch
        self._place_batch(slot, batch)
        # remember submit cycles for the results (dispatch == now)
        for job, submitted in zip(jobs, dispatch_cycles):
            self._pending_meta[job.job_id] = (submitted, self.now)
        self._arm(slot)
        self.trace_event(
            "dispatch", ocp=slot.index, batch=batch.batch_id,
            jobs=len(jobs), words=batch.total_words,
        )

    def _place_batch(self, slot: _OcpSlot, batch: Batch) -> None:
        """Stage program and inputs in the slot's arenas (backdoor).

        Same application-owned-memory convention as the driver's
        ``place_program``: staging models the host preparing buffers
        ahead of time; the traffic the simulation measures is the
        OCP's own mvtc/mvfc stream.
        """
        self._soc.write_ram(slot.prog_base, batch.program.words())
        flat: List[int] = []
        for job in batch.jobs:
            flat.extend(job.words)
        self._soc.write_ram(slot.in_base, flat)

    def _arm(self, slot: _OcpSlot) -> None:
        assert slot.batch is not None
        slot.writes = [
            (slot.reg_base + REG_BANK_BASE + 0, slot.prog_base),
            (slot.reg_base + REG_BANK_BASE + 4, slot.in_base),
            (slot.reg_base + REG_BANK_BASE + 8, slot.out_base),
            (slot.reg_base + REG_PROG_SIZE, len(slot.batch.program)),
            (slot.reg_base + REG_CTRL, CTRL_S | CTRL_IE),
        ]
        slot.state = "config"
        self._issue_write(slot)

    def _issue_write(self, slot: _OcpSlot) -> None:
        address, value = slot.writes.pop(0)
        slot.transfer = self._soc.bus.submit(waiter=self, request=BusRequest(
            master=slot.master, kind=AccessKind.WRITE, address=address,
            burst=1, data=[value], priority=0,
        ))

    def _step_config(self, slot: _OcpSlot) -> None:
        transfer = slot.transfer
        if transfer is None or not transfer.done:
            return
        if transfer.error:
            raise SchedulerError(
                f"OCP {slot.index}: config write failed: "
                f"{transfer.error_reason}"
            )
        if slot.writes:
            self._issue_write(slot)
        else:
            slot.transfer = None
            slot.state = "running"

    def _step_running(self, slot: _OcpSlot) -> None:
        if not slot.ocp.irq.pending:
            return
        slot.ocp.irq.clear()
        slot.transfer = self._soc.bus.submit(waiter=self, request=BusRequest(
            master=slot.master, kind=AccessKind.READ,
            address=slot.reg_base + REG_CTRL, burst=1, priority=0,
        ))
        slot.state = "status"

    def _step_status(self, slot: _OcpSlot) -> None:
        transfer = slot.transfer
        if transfer is None or not transfer.done:
            return
        status = transfer.data[0]
        slot.transfer = None
        if status & CTRL_E:
            self._trap(slot, (status & ERR_MASK) >> ERR_SHIFT)
        else:
            self._harvest(slot)

    def _trap(self, slot: _OcpSlot, code: int) -> None:
        batch = slot.batch
        assert batch is not None
        self.trace_event(
            "trap", ocp=slot.index, batch=batch.batch_id, code=code,
            attempt=batch.attempts,
        )
        if batch.attempts > self.max_retries:
            raise SchedulerError(
                f"OCP {slot.index}: batch {batch.batch_id} trapped with "
                f"error code {code} after {batch.attempts} attempts "
                f"(jobs {[job.job_id for job in batch.jobs]})"
            )
        slot.transfer = self._soc.bus.submit(waiter=self, request=BusRequest(
            master=slot.master, kind=AccessKind.WRITE,
            address=slot.reg_base + REG_CTRL, burst=1, data=[0], priority=0,
        ))
        slot.state = "abort"

    def _step_abort(self, slot: _OcpSlot) -> None:
        transfer = slot.transfer
        if transfer is None or not transfer.done:
            return
        batch = slot.batch
        assert batch is not None
        slot.transfer = None
        slot.ocp.soft_reset()
        slot.ocp.irq.clear()
        slot.retries += 1
        backoff = min(
            self.backoff_cycles * (1 << (batch.attempts - 1)),
            MAX_BACKOFF_CYCLES,
        )
        slot.resume_at = self.now + backoff
        slot.state = "backoff"

    def _step_backoff(self, slot: _OcpSlot) -> None:
        if self.now < slot.resume_at:
            return
        batch = slot.batch
        assert batch is not None
        batch.attempts += 1
        self.trace_event(
            "retry", ocp=slot.index, batch=batch.batch_id,
            attempt=batch.attempts,
        )
        # inputs are still staged; a full reconfigure restarts cleanly
        self._place_batch(slot, batch)
        self._arm(slot)

    def _harvest(self, slot: _OcpSlot) -> None:
        batch = slot.batch
        assert batch is not None
        for job, offset in zip(batch.jobs, batch.out_offsets):
            outputs = self._soc.read_ram(
                slot.out_base + 4 * offset, job.size
            )
            submitted, dispatched = self._pending_meta.pop(job.job_id)
            self.completed[job.job_id] = JobResult(
                job=job, ocp_index=slot.index, outputs=outputs,
                submit_cycle=submitted, dispatch_cycle=dispatched,
                complete_cycle=self.now, attempts=batch.attempts,
                batch_id=batch.batch_id,
            )
            self.completion_order.append(job.job_id)
            slot.jobs_done += 1
        slot.batches_done += 1
        self.trace_event(
            "complete", ocp=slot.index, batch=batch.batch_id,
            jobs=len(batch.jobs),
        )
        slot.transfer = self._soc.bus.submit(waiter=self, request=BusRequest(
            master=slot.master, kind=AccessKind.WRITE,
            address=slot.reg_base + REG_CTRL, burst=1, data=[0], priority=0,
        ))
        slot.state = "ack"

    def _step_ack(self, slot: _OcpSlot) -> None:
        transfer = slot.transfer
        if transfer is None or not transfer.done:
            return
        slot.transfer = None
        slot.batch = None
        slot.state = "idle"
