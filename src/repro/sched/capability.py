"""Kernel-capability table: which OCPs can serve which job kinds.

The table maps a kernel kind string (a RAC's ``kind`` class attribute)
to the OCP indices whose elaborated RAC serves it -- the software twin
of lumos-style ``kernel_asic_table`` routing.  It can be derived from
an elaborated SoC (:meth:`CapabilityTable.from_soc`) or written by
hand for a subset routing policy; hand-written tables are validated
against the elaborated system through the soclint OU17x checks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..sim.errors import ConfigurationError


class CapabilityTable:
    """Mapping from kernel kind to the OCP indices that serve it."""

    def __init__(self, table: Mapping[str, Sequence[int]]) -> None:
        if not table:
            raise ConfigurationError(
                "capability table is empty: no kernel kind can ever "
                "be dispatched"
            )
        self._table: Dict[str, Tuple[int, ...]] = {}
        for kind, indices in table.items():
            if not indices:
                raise ConfigurationError(
                    f"capability table lists kind {kind!r} with no OCPs"
                )
            self._table[kind] = tuple(dict.fromkeys(int(i) for i in indices))

    @classmethod
    def from_soc(cls, soc) -> "CapabilityTable":
        """Derive the full table from an elaborated SoC."""
        table: Dict[str, List[int]] = {}
        for index, ocp in enumerate(soc.ocps):
            table.setdefault(ocp.rac.kind, []).append(index)
        if not table:
            raise ConfigurationError(
                "cannot build a capability table: the SoC has no OCPs"
            )
        return cls(table)

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(self._table)

    def serving(self, kind: str) -> Tuple[int, ...]:
        """OCP indices able to run ``kind`` (raises for unknown kinds)."""
        try:
            return self._table[kind]
        except KeyError:
            raise ConfigurationError(
                f"no OCP serves kernel kind {kind!r}; "
                f"known kinds: {sorted(self._table)}"
            ) from None

    def indices(self) -> Tuple[int, ...]:
        """All OCP indices referenced anywhere in the table."""
        seen: Dict[int, None] = {}
        for indices in self._table.values():
            for index in indices:
                seen[index] = None
        return tuple(seen)

    def as_dict(self) -> Dict[str, List[int]]:
        return {kind: list(indices) for kind, indices in self._table.items()}

    def validate(self, soc):
        """Check this table against an elaborated SoC via soclint.

        Returns the :class:`~repro.verify.diagnostics.VerifyReport`;
        OU170 flags a kind with no serving RAC, OU171 a target index
        that is out of range or hosts a different-kind RAC.
        """
        from ..soclint import lint_soc

        return lint_soc(soc, capabilities=self.as_dict())

    def validate_plan(self, kinds: Sequence[str]):
        """Check this table against a *planned* (unelaborated) SoC.

        ``kinds[i]`` is the kernel kind the RAC planned for OCP ``i``
        serves -- e.g. ``[rac.kind for rac in racs]`` before
        :func:`repro.system.build_mpsoc` ever runs.  Same OU170/OU171
        diagnostics as :meth:`validate`, without paying for
        elaboration.
        """
        from ..soclint.checks import check_capability_kinds
        from ..verify.diagnostics import VerifyReport

        report = VerifyReport()
        check_capability_kinds(list(kinds), report, self.as_dict())
        report.sort()
        return report
