"""Job model for the multi-OCP throughput scheduler.

A :class:`Job` is one accelerator invocation: a kernel kind (matched
against RAC ``kind`` strings through the capability table), a block of
input words, and an optional *chain* tag.  Jobs sharing a chain form a
dependency sequence: the scheduler pins the chain to one OCP and never
reorders its members, so chained outputs are produced in submission
order even under batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class Job:
    """One accelerator job (immutable once submitted)."""

    job_id: str
    kind: str
    words: List[int]
    chain: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.words:
            raise ConfigurationError(f"job {self.job_id} has no input words")

    @property
    def size(self) -> int:
        return len(self.words)


@dataclass
class JobResult:
    """Completion record for one job."""

    job: Job
    ocp_index: int
    outputs: List[int] = field(default_factory=list)
    submit_cycle: int = 0
    dispatch_cycle: int = 0
    complete_cycle: int = 0
    attempts: int = 1
    batch_id: int = 0

    @property
    def wait_cycles(self) -> int:
        """Cycles spent queued before dispatch began."""
        return self.dispatch_cycle - self.submit_cycle

    @property
    def turnaround_cycles(self) -> int:
        return self.complete_cycle - self.submit_cycle
