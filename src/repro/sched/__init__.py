"""Multi-OCP throughput scheduling (MPSoC scale-out).

The paper's Section II-A argument -- OCPs are ordinary bus
peripherals, so one SoC can host many -- only pays off with a
dispatcher that turns N attached coprocessors into aggregate
throughput.  This package provides that dispatcher plus its
correctness machinery:

* :class:`~repro.sched.job.Job` / :class:`~repro.sched.job.JobResult`
  -- the job model (kernel kind, input block, optional dependency
  chain);
* :class:`~repro.sched.capability.CapabilityTable` -- kernel-kind to
  serving-OCP routing, soclint-validated (OU170/OU171);
* :func:`~repro.sched.batch.compose_batch` -- fuse small jobs into one
  microcode program (single IRQ per batch);
* :class:`~repro.sched.scheduler.ThroughputScheduler` -- the
  cycle-accurate dispatcher (bounded queues, back-pressure, pluggable
  round-robin / shortest-queue / cost-aware fairness, IRQ-driven
  completion, abort-and-retry on traps, perfbound-backed SLA
  admission);
* :func:`~repro.sched.reference.run_sequential_reference` -- the
  sequential single-OCP oracle the differential suite compares
  against.
"""

from .batch import Batch, compose_batch, job_program
from .capability import CapabilityTable
from .job import Job, JobResult
from .reference import run_sequential_reference
from .scheduler import (
    CostAwarePolicy,
    RaceHazardError,
    RoundRobinPolicy,
    SchedulerError,
    SchedulingPolicy,
    ShortestQueuePolicy,
    SlaRejectionError,
    ThroughputScheduler,
)

__all__ = [
    "Batch",
    "CapabilityTable",
    "CostAwarePolicy",
    "Job",
    "JobResult",
    "RaceHazardError",
    "RoundRobinPolicy",
    "SchedulerError",
    "SchedulingPolicy",
    "ShortestQueuePolicy",
    "SlaRejectionError",
    "ThroughputScheduler",
    "compose_batch",
    "job_program",
    "run_sequential_reference",
]
