"""Sequential single-OCP reference for the differential suite.

Runs a job stream one job at a time, in submission order, on a
one-OCP SoC per kernel kind, through the ordinary blocking driver --
no scheduler, no batching, no concurrency.  The scheduled multi-OCP
run must be bit-exact against this: kernels are pure functions of
their input block, so neither placement, nor batching, nor
interleaving may change any output word.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from ..sim.errors import ConfigurationError
from ..sw.driver import OuessantDriver
from .batch import job_program
from .job import Job

#: reference arenas (same low-RAM layout the driver examples use)
REF_PROG_OFFSET = 0x1000
REF_IN_OFFSET = 0x2000
REF_OUT_OFFSET = 0x3000


def run_sequential_reference(
    jobs: List[Job],
    rac_factories: Mapping[str, Callable[[], object]],
    soc_kwargs: Dict[str, object] | None = None,
    chunk: int = 64,
) -> Dict[str, List[int]]:
    """Execute ``jobs`` sequentially; return ``{job_id: output words}``.

    ``rac_factories`` maps each kernel kind to a zero-argument factory
    building a fresh RAC equivalent to the scheduled SoC's (same
    functional parameters; timing parameters are irrelevant to the
    comparison).
    """
    from ..system import RAM_BASE, SoC

    kwargs = dict(soc_kwargs or {})
    socs: Dict[str, SoC] = {}
    drivers: Dict[str, OuessantDriver] = {}
    results: Dict[str, List[int]] = {}
    prog = RAM_BASE + REF_PROG_OFFSET
    inp = RAM_BASE + REF_IN_OFFSET
    out = RAM_BASE + REF_OUT_OFFSET
    for job in jobs:
        if job.kind not in socs:
            try:
                factory = rac_factories[job.kind]
            except KeyError:
                raise ConfigurationError(
                    f"no reference RAC factory for kind {job.kind!r}"
                ) from None
            socs[job.kind] = SoC(racs=[factory()], **kwargs)
            drivers[job.kind] = OuessantDriver(socs[job.kind])
        soc = socs[job.kind]
        program = job_program(job, 0, 0, chunk=chunk)
        soc.write_ram(inp, job.words)
        drivers[job.kind].run(
            program.words(), banks={0: prog, 1: inp, 2: out},
        )
        results[job.job_id] = soc.read_ram(out, job.size)
    return results
