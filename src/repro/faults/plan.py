"""Seeded, replayable fault schedules.

The paper's integration argument -- the OCP is "just another slave" on
the bus, so a misbehaving accelerator cannot take the SoC down -- is a
robustness claim, and robustness claims need adversity to be tested
against.  A :class:`FaultPlan` is that adversity, made deterministic:
a list of :class:`FaultEvent` entries, optionally generated from a
seeded RNG, that the injector wrappers in
:mod:`repro.faults.injectors` consult.  Two runs with the same plan see
byte-identical faults at the same trigger points, so every failure is
replayable.

Events trigger either on the *n-th operation at a site* (bus access
number, FIFO push number -- robust against incidental timing drift) or
on an absolute cycle (microcode corruption, exec hangs).  Sites are
short strings naming an interposition point:

========== ====================================================
``ram``     main memory as seen from the bus
``fifo.inN`` / ``fifo.outN``  the OCP's N-th input/output FIFO
``mc``      microcode words in memory (cycle-triggered)
``rac``     the accelerator's ``end_op`` handshake (cycle window)
========== ====================================================
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


class FaultKind(enum.Enum):
    """What goes wrong."""

    #: XOR one bit of a data word crossing the site
    BIT_FLIP = "bit_flip"
    #: a FIFO push handshake is lost: the word silently disappears
    DROP_WORD = "drop_word"
    #: a FIFO push handshake double-fires: the word is enqueued twice
    DUP_WORD = "dup_word"
    #: the slave answers the access with an ERROR response
    SLAVE_ERROR = "slave_error"
    #: the slave inserts ``duration`` extra wait states on one access
    STALL = "stall"
    #: XOR one bit of a microcode word in memory at a given cycle
    CORRUPT_MICROCODE = "corrupt_microcode"
    #: suppress the RAC's ``end_op`` for ``duration`` cycles (0 = forever)
    HANG_EXEC = "hang_exec"


#: fault kinds that cannot change a program's functional outcome --
#: they only add latency, so a run under them must still match the
#: reference model word for word
RECOVERABLE_KINDS = frozenset({FaultKind.STALL})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``index`` is the occurrence number at the site (0-based access /
    push counter) for operation-triggered kinds, or the absolute cycle
    for ``CORRUPT_MICROCODE`` / ``HANG_EXEC``.  ``word`` selects the
    word within a burst (``BIT_FLIP`` on ``ram``) or the absolute byte
    address (``CORRUPT_MICROCODE``).
    """

    kind: FaultKind
    site: str
    index: int = 0
    bit: int = 0
    word: int = 0
    duration: int = 0

    def describe(self) -> str:
        extra = ""
        if self.kind in (FaultKind.BIT_FLIP, FaultKind.CORRUPT_MICROCODE):
            extra = f" bit={self.bit} word={self.word:#x}"
        elif self.kind in (FaultKind.STALL, FaultKind.HANG_EXEC):
            extra = f" duration={self.duration or 'forever'}"
        return f"{self.kind.value}@{self.site}[{self.index}]{extra}"


@dataclass
class FaultPlan:
    """A deterministic schedule of faults.

    Build one explicitly from events, or use :meth:`random` /
    :meth:`random_stalls` to generate a schedule from a seed.  The seed
    is carried along purely for reporting -- replaying a plan never
    consults the RNG again.
    """

    seed: int = 0
    events: List[FaultEvent] = field(default_factory=list)

    @classmethod
    def random(
        cls,
        seed: int,
        n_events: int = 4,
        sites: Sequence[str] = ("ram",),
        kinds: Sequence[FaultKind] = (
            FaultKind.BIT_FLIP,
            FaultKind.SLAVE_ERROR,
            FaultKind.STALL,
        ),
        max_index: int = 32,
        max_stall: int = 20,
    ) -> "FaultPlan":
        """Draw ``n_events`` faults from a seeded RNG."""
        rng = random.Random(seed)
        events = [
            FaultEvent(
                kind=rng.choice(list(kinds)),
                site=rng.choice(list(sites)),
                index=rng.randrange(max_index),
                bit=rng.randrange(32),
                word=rng.randrange(8),
                duration=rng.randrange(1, max_stall + 1),
            )
            for _ in range(n_events)
        ]
        return cls(seed=seed, events=events)

    @classmethod
    def random_stalls(
        cls,
        seed: int,
        n_events: int = 4,
        sites: Sequence[str] = ("ram",),
        max_index: int = 32,
        max_stall: int = 20,
    ) -> "FaultPlan":
        """A recoverable-only plan: stall windows, no data corruption.

        Runs under such a plan must produce exactly the reference
        model's memory image -- the differential harness leans on this.
        """
        return cls.random(
            seed, n_events=n_events, sites=sites,
            kinds=(FaultKind.STALL,), max_index=max_index,
            max_stall=max_stall,
        )

    # -- queries ---------------------------------------------------------
    def at_site(self, site: str) -> List[FaultEvent]:
        return [e for e in self.events if e.site == site]

    @property
    def recoverable(self) -> bool:
        """True when no event can alter the functional outcome."""
        return all(e.kind in RECOVERABLE_KINDS for e in self.events)

    def describe(self) -> str:
        lines = [f"fault plan (seed={self.seed}, {len(self.events)} events)"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


def fifo_site_for(fifo_name: str) -> Optional[str]:
    """Map an OCP FIFO component name to its plan site.

    ``ocp.fin0`` -> ``fifo.in0``; ``ocp3.fout1.g2`` -> ``fifo.out1``;
    anything that is not an OCP fabric FIFO maps to ``None``.
    """
    for part in fifo_name.split("."):
        if part.startswith("fin") and part[3:].isdigit():
            return f"fifo.in{part[3:]}"
        if part.startswith("fout") and part[4:].isdigit():
            return f"fifo.out{part[4:]}"
    return None
