"""Fault-injecting wrapper components.

Each injector interposes on one integration seam of the OCP --
exactly the seams the paper argues make Ouessant pluggable:

* :class:`FaultySlave` wraps any :class:`~repro.bus.types.BusSlave`
  (normally main memory) and can flip bits in read data, answer with a
  bus ERROR response, or stretch an access with extra wait states;
* :class:`FaultyFIFO` is a drop-in :class:`~repro.rac.fifo.FIFO` whose
  push handshake can drop, duplicate or corrupt words;
* :class:`MicrocodeCorruptor` flips a bit of a program word in memory
  at a scheduled cycle (a soft error in the instruction store);
* :class:`ExecHang` suppresses the RAC's ``end_op`` during a cycle
  window (or forever), modelling a wedged accelerator.

Every injection is recorded in the simulation trace as a
``fault.<kind>`` event, so a run's complete fault history can be
diffed between replays.
"""

from __future__ import annotations

from typing import List, Optional

from ..bus.types import BusSlave
from ..mem.memory import Memory
from ..rac.base import RAC
from ..rac.fifo import FIFO
from ..sim.errors import BusFaultError
from ..sim.kernel import Component
from .plan import FaultEvent, FaultKind, FaultPlan, fifo_site_for


class FaultySlave(Component, BusSlave):
    """Bus-slave wrapper injecting data, error and timing faults.

    Occurrence counting is per *granted transfer* (the bus calls
    :meth:`latency_for` exactly once per grant, before the data moves),
    so event indices line up with the order transfers win arbitration
    regardless of how long each one takes.
    """

    #: armed faults perturb other components mid-window: force the
    #: simulator off the vectorized dispatch table onto the audited
    #: idle-skip path
    requires_full_dispatch = True

    def __init__(
        self,
        name: str,
        inner: BusSlave,
        plan: FaultPlan,
        site: str = "ram",
    ) -> None:
        Component.__init__(self, name)
        self.inner = inner
        self.site = site
        self._events = plan.at_site(site)
        self._access = -1

    def next_activity(self):
        # purely reactive: everything happens inside bus data-path
        # calls, never in a tick of its own
        return None

    # -- timing path --------------------------------------------------------
    def latency_for(self, offset: int, count: int) -> int:
        self._access += 1
        inner_latency_for = getattr(self.inner, "latency_for", None)
        if inner_latency_for is not None:
            latency = inner_latency_for(offset, count)
        else:
            latency = self.inner.access_latency
        for event in self._matching(FaultKind.STALL):
            latency += event.duration
            self.trace_event(
                "fault.stall", access=self._access, extra=event.duration
            )
        return latency

    @property
    def access_latency(self) -> int:  # pragma: no cover - latency_for wins
        return self.inner.access_latency

    def _matching(self, kind: FaultKind) -> List[FaultEvent]:
        return [
            e for e in self._events
            if e.kind is kind and e.index == self._access
        ]

    # -- data path --------------------------------------------------------
    def read_burst(self, offset: int, count: int) -> List[int]:
        for _ in self._matching(FaultKind.SLAVE_ERROR):
            self.trace_event(
                "fault.slave_error", access=self._access, offset=hex(offset)
            )
            raise BusFaultError(
                f"{self.site}: injected ERROR response on read "
                f"access {self._access}"
            )
        data = list(self.inner.read_burst(offset, count))
        for event in self._matching(FaultKind.BIT_FLIP):
            where = event.word % count
            data[where] ^= 1 << (event.bit % 32)
            self.trace_event(
                "fault.bit_flip", access=self._access, word=where,
                bit=event.bit % 32,
            )
        return data

    def write_burst(self, offset: int, values: List[int]) -> None:
        for _ in self._matching(FaultKind.SLAVE_ERROR):
            self.trace_event(
                "fault.slave_error", access=self._access, offset=hex(offset)
            )
            raise BusFaultError(
                f"{self.site}: injected ERROR response on write "
                f"access {self._access}"
            )
        values = list(values)
        for event in self._matching(FaultKind.BIT_FLIP):
            where = event.word % len(values)
            values[where] ^= 1 << (event.bit % 32)
            self.trace_event(
                "fault.bit_flip", access=self._access, word=where,
                bit=event.bit % 32,
            )
        self.inner.write_burst(offset, values)

    def read_word(self, offset: int) -> int:
        return self.inner.read_word(offset)

    def write_word(self, offset: int, value: int) -> None:
        self.inner.write_word(offset, value)


class FaultyFIFO(FIFO):
    """FIFO whose push handshake can drop, duplicate or corrupt words.

    Built by passing a ``fifo_factory`` to
    :class:`~repro.core.coprocessor.OuessantCoprocessor`; the plan site
    is derived from the fabric name (``fifo.in0``, ``fifo.out1``, ...)
    unless given explicitly.
    """

    #: see FaultySlave: armed fault sites disable vectorized dispatch
    requires_full_dispatch = True

    def __init__(
        self,
        name: str,
        plan: Optional[FaultPlan] = None,
        site: Optional[str] = None,
        **kwargs: int,
    ) -> None:
        super().__init__(name, **kwargs)
        self.site = site if site is not None else fifo_site_for(name)
        self._events = plan.at_site(self.site) if plan and self.site else []
        self._push_index = -1

    def push(self, value: int) -> None:
        self._push_index += 1
        for event in self._events:
            if event.index != self._push_index:
                continue
            if event.kind is FaultKind.DROP_WORD:
                self.stats.incr("faults.dropped")
                self.trace_event("fault.drop_word", index=self._push_index)
                return
            if event.kind is FaultKind.BIT_FLIP:
                value ^= 1 << (event.bit % self.width_push)
                self.stats.incr("faults.flipped")
                self.trace_event(
                    "fault.bit_flip", index=self._push_index,
                    bit=event.bit % self.width_push,
                )
            elif event.kind is FaultKind.DUP_WORD:
                super().push(value)
                if self.can_push():
                    self.stats.incr("faults.duplicated")
                    self.trace_event(
                        "fault.dup_word", index=self._push_index
                    )
                    super().push(value)
                return
        super().push(value)


class MicrocodeCorruptor(Component):
    """Flips bits of program words in memory at scheduled cycles.

    Uses the memory backdoor (no bus cycles) -- this is a soft error in
    the instruction store, not bus traffic.  ``word`` in the event is
    the absolute byte address of the microcode word; ``index`` is the
    trigger cycle.  With prefetch enabled, corrupt before the program
    starts (the controller snapshots bank 0 in one burst).
    """

    #: see FaultySlave: armed fault sites disable vectorized dispatch
    requires_full_dispatch = True

    def __init__(
        self,
        name: str,
        memory: Memory,
        memory_base: int,
        plan: FaultPlan,
        site: str = "mc",
    ) -> None:
        super().__init__(name)
        self.memory = memory
        self.memory_base = memory_base
        self._pending = [
            e for e in plan.at_site(site)
            if e.kind is FaultKind.CORRUPT_MICROCODE
        ]

    def next_activity(self):
        if not self._pending:
            return None
        # sleep until the earliest scheduled corruption cycle
        return min(max(e.index, self.now) for e in self._pending)

    def tick(self) -> None:
        if not self._pending:
            return
        due = [e for e in self._pending if e.index <= self.now]
        for event in due:
            self._pending.remove(event)
            offset = event.word - self.memory_base
            word = self.memory.read_word(offset)
            self.memory.write_word(offset, word ^ (1 << (event.bit % 32)))
            self.trace_event(
                "fault.corrupt_microcode",
                address=hex(event.word),
                bit=event.bit % 32,
            )


class ExecHang(Component):
    """Suppresses a RAC's ``end_op`` during a cycle window.

    ``index`` is the window's first cycle, ``duration`` its length in
    cycles (0 = hang forever).  A suppressed completion is re-asserted
    when the window closes, so finite hangs are purely a timing fault;
    an infinite hang is what the controller watchdog exists for.
    """

    #: see FaultySlave: armed fault sites disable vectorized dispatch
    requires_full_dispatch = True

    def __init__(
        self,
        name: str,
        rac: RAC,
        plan: FaultPlan,
        site: str = "rac",
    ) -> None:
        super().__init__(name)
        self.rac = rac
        self._events = [
            e for e in plan.at_site(site) if e.kind is FaultKind.HANG_EXEC
        ]
        self._suppressed = False
        self._announced: set = set()

    def _active(self) -> bool:
        for event in self._events:
            if self.now < event.index:
                continue
            if event.duration == 0 or self.now < event.index + event.duration:
                if id(event) not in self._announced:
                    self._announced.add(id(event))
                    self.trace_event(
                        "fault.hang_exec",
                        duration=event.duration or "forever",
                    )
                return True
        return False

    def next_activity(self):
        """Sleep between window boundaries.

        Within an open window the suppression itself reacts to
        ``end_op``, which only the RAC's tick can raise -- the global
        quiescence rule covers that.  The observable moments are the
        window edges: the opening tick announces the fault (a trace
        event), the closing tick re-asserts a suppressed completion.
        """
        now = self.now
        wake = None
        in_window = False
        for event in self._events:
            if now < event.index:
                edge = event.index  # window opens (announce + suppress)
            elif event.duration == 0 or now < event.index + event.duration:
                in_window = True
                if id(event) not in self._announced:
                    return now  # open but not yet announced: tick now
                if self.rac.end_op:
                    return now  # a completion is waiting to be eaten
                if event.duration == 0:
                    continue  # forever-window: no closing edge
                edge = event.index + event.duration  # window closes
            else:
                continue  # window already behind us
            if wake is None or edge < wake:
                wake = edge
        if self._suppressed and not in_window:
            return now  # the re-assert of end_op is due this cycle
        return wake

    def tick(self) -> None:
        if self._active():
            if self.rac.end_op:
                self._suppressed = True
                self.rac.end_op = False
        elif self._suppressed:
            self._suppressed = False
            self.rac.end_op = True
