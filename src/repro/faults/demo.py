"""The ``repro faults`` demonstrations.

Two stories, both scripted against :mod:`repro.faults.harness`:

1. **Replay determinism** -- the same seed produces the same fault
   plan, and two fault-injected runs of the same workload produce
   identical ``fault.*`` trace histories.  Debugging an injected
   failure is therefore always possible offline.
2. **Detection and degradation** -- a plan that hangs the accelerator
   forever: the controller watchdog traps the hung ``exec``, the
   driver times out/retries with backoff, then declares the OCP dead
   and falls back to the software path, which still produces the
   right answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.program import OuProgram
from ..rac.scale import PassthroughRac
from ..sw.driver import OuessantDriver, RecoveryResult
from ..system import RAM_BASE
from .harness import build_faulty_soc, fault_signature
from .plan import FaultEvent, FaultKind, FaultPlan

PROG = RAM_BASE + 0x1000
IN = RAM_BASE + 0x2000
OUT = RAM_BASE + 0x3000

BLOCK = 16


def _program() -> List[int]:
    # exec (not execs): the controller waits on end_op, which is what
    # the hung-accelerator scenario needs to actually wedge
    return (
        OuProgram()
        .stream_to(1, BLOCK)
        .exec_()
        .stream_from(2, BLOCK)
        .eop()
        .words()
    )


def _run_once(plan: FaultPlan) -> "tuple[List[str], List[int]]":
    """One fault-injected loopback run; returns (signature, output)."""
    soc = build_faulty_soc(
        PassthroughRac(block_size=BLOCK), plan, watchdog_cycles=2000
    )
    driver = OuessantDriver(soc)
    soc.write_ram(IN, list(range(BLOCK)))
    driver.run_with_recovery(
        _program(), {0: PROG, 1: IN, 2: OUT}, timeout_cycles=20_000
    )
    return fault_signature(soc.sim.trace), soc.read_ram(OUT, BLOCK)


@dataclass
class ReplayReport:
    """Outcome of the determinism demonstration."""

    plan: FaultPlan
    signature: List[str]
    identical: bool


def demo_replay(seed: int) -> ReplayReport:
    """Run the same seeded plan twice; fault histories must match."""
    # a loopback run makes only a handful of RAM bursts (microcode
    # prefetch + one read burst + one write burst), so keep indices low
    plan = FaultPlan.random(
        seed,
        n_events=6,
        sites=("ram",),
        kinds=(FaultKind.BIT_FLIP, FaultKind.SLAVE_ERROR, FaultKind.STALL),
        max_index=3,
    )
    first, _ = _run_once(plan)
    second, _ = _run_once(plan)
    return ReplayReport(
        plan=plan, signature=first, identical=first == second
    )


@dataclass
class DegradationReport:
    """Outcome of the watchdog/retry/fallback demonstration."""

    recovery: RecoveryResult
    watchdog_traps: int
    driver_events: List[str]
    output_correct: bool


def demo_degradation(seed: int = 0) -> DegradationReport:
    """Hang the accelerator forever; end-to-end recovery must engage.

    The fallback is the honest software equivalent of the loopback
    workload: a CPU copy loop (:func:`software_memcpy`) moving the
    same words the OCP would have.
    """
    from ..baselines.software import software_memcpy

    plan = FaultPlan(
        seed=seed,
        events=[FaultEvent(FaultKind.HANG_EXEC, "rac", index=0,
                           duration=0)],
    )
    soc = build_faulty_soc(
        PassthroughRac(block_size=BLOCK), plan, watchdog_cycles=1500
    )
    driver = OuessantDriver(soc)
    data = list(range(BLOCK))
    soc.write_ram(IN, data)

    def fallback() -> List[int]:
        out, _ = software_memcpy(data)
        soc.write_ram(OUT, out)
        return out

    recovery = driver.run_with_recovery(
        _program(),
        {0: PROG, 1: IN, 2: OUT},
        max_attempts=2,
        timeout_cycles=20_000,
        backoff_cycles=32,
        fallback=fallback,
    )
    trace = soc.sim.trace
    traps = trace.events(event="trap")
    driver_events = [
        f"{e.event}({', '.join(f'{k}={v}' for k, v in e.data.items())})"
        for e in trace.events(component="driver")
        # op.begin/op.end are span markers for the observability
        # layer; the recovery narrative reads better without them
        if not e.event.startswith("op.")
    ]
    return DegradationReport(
        recovery=recovery,
        watchdog_traps=len(traps),
        driver_events=driver_events,
        output_correct=soc.read_ram(OUT, BLOCK) == data,
    )


def render_report(seed: int) -> str:
    """Text rendering of both demonstrations (the CLI's output)."""
    lines: List[str] = []
    replay = demo_replay(seed)
    lines.append(replay.plan.describe())
    lines.append("")
    lines.append(f"run 1 / run 2 fault history "
                 f"({len(replay.signature)} events):")
    lines.extend(f"  {entry}" for entry in replay.signature)
    lines.append(
        "replay identical: " + ("YES" if replay.identical else "NO")
    )
    lines.append("")
    degraded = demo_degradation(seed)
    lines.append("hung-exec scenario (end_op suppressed forever):")
    lines.append(f"  watchdog traps:     {degraded.watchdog_traps}")
    lines.append(f"  driver attempts:    {degraded.recovery.attempts}")
    lines.append(f"  degraded to SW:     {degraded.recovery.degraded}")
    lines.append(f"  output correct:     {degraded.output_correct}")
    for event in degraded.driver_events:
        lines.append(f"  driver: {event}")
    return "\n".join(lines)
