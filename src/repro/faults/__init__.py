"""Deterministic fault injection and recovery testing.

The paper's integration claim is that a misbehaving coprocessor stays
contained behind the bus interface.  This package makes the claim
testable: seed-driven :class:`FaultPlan` schedules drive wrapper
components that flip bits, drop handshakes, signal bus errors, stall
accesses, corrupt microcode and hang the accelerator -- all
replayably -- while the controller traps, the driver retries, and, as
a last resort, software takes over.  See ``docs/FAULTS.md``.
"""

from .harness import (
    build_faulty_soc,
    fault_history,
    fault_signature,
    faulty_fifo_factory,
    inject_faults,
)
from .injectors import ExecHang, FaultySlave, FaultyFIFO, MicrocodeCorruptor
from .plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    RECOVERABLE_KINDS,
    fifo_site_for,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "RECOVERABLE_KINDS",
    "fifo_site_for",
    "FaultySlave",
    "FaultyFIFO",
    "MicrocodeCorruptor",
    "ExecHang",
    "build_faulty_soc",
    "inject_faults",
    "faulty_fifo_factory",
    "fault_history",
    "fault_signature",
]
