"""Build fault-injected systems out of ordinary ones.

The injectors in :mod:`repro.faults.injectors` are wrappers; this
module does the wrapping.  :func:`build_faulty_soc` constructs a SoC
whose main memory, FIFO fabric, microcode store and RAC handshake are
all interposed by the same :class:`~repro.faults.plan.FaultPlan`, so
one seed deterministically drives every fault in the system.

Interposition points (all of them seams the architecture already
exposes, which is rather the point of the exercise):

* the ``ram`` region is re-pointed at a :class:`FaultySlave` via
  :meth:`~repro.bus.memmap.MemoryMap.replace_slave` -- address decode
  untouched, endpoint swapped;
* the OCP builds its fabric through a ``fifo_factory`` returning
  :class:`FaultyFIFO` instances;
* a :class:`MicrocodeCorruptor` and an :class:`ExecHang` are appended
  to the component list (the latter *after* the RAC, so a suppressed
  ``end_op`` is gone before the controller's next look at it).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..rac.base import RAC
from ..rac.fifo import FIFO
from ..sim.errors import SimulationError
from ..sim.tracing import Trace, TraceEvent
from ..system import RAM_BASE, SoC
from .injectors import ExecHang, FaultySlave, FaultyFIFO, MicrocodeCorruptor
from .plan import FaultPlan


def faulty_fifo_factory(plan: FaultPlan) -> Callable[..., FIFO]:
    """A ``fifo_factory`` for :class:`OuessantCoprocessor`.

    Every FIFO of the fabric becomes a :class:`FaultyFIFO` consulting
    ``plan`` (its site derived from the fabric naming convention).
    """

    def factory(name: str, **kwargs: int) -> FIFO:
        return FaultyFIFO(name, plan=plan, **kwargs)

    return factory


def inject_faults(soc: SoC, plan: FaultPlan) -> SoC:
    """Interpose ``plan``'s memory/microcode/RAC faults on a built SoC.

    FIFO faults cannot be added after the fact (the fabric is built at
    OCP construction); use :func:`build_faulty_soc` or pass
    :func:`faulty_fifo_factory` to ``add_ocp`` for those.
    """
    faulty_ram = FaultySlave("faults.ram", soc.memory, plan, site="ram")
    soc.bus.memmap.replace_slave("ram", faulty_ram)
    soc.sim.add(faulty_ram)
    soc.sim.add(
        MicrocodeCorruptor("faults.mc", soc.memory, RAM_BASE, plan)
    )
    for index, ocp in enumerate(soc.ocps):
        if ocp.rac is not None:
            suffix = f".{index}" if index else ""
            # registered after the RAC: a suppressed end_op never
            # survives into the controller's next tick
            soc.sim.add(ExecHang(f"faults.rac{suffix}", ocp.rac, plan))
    return soc


def build_faulty_soc(
    rac: RAC,
    plan: FaultPlan,
    watchdog_cycles: int = 0,
    trace: Optional[Trace] = None,
    with_cpu: bool = False,
    prefetch: bool = True,
) -> SoC:
    """One OCP around ``rac``, every seam interposed by ``plan``."""
    soc = SoC(trace=trace if trace is not None else Trace(),
              with_cpu=with_cpu, prefetch=prefetch)
    soc.add_ocp(
        rac,
        watchdog_cycles=watchdog_cycles,
        fifo_factory=faulty_fifo_factory(plan),
    )
    return inject_faults(soc, plan)


def fault_history(trace: Trace) -> List[TraceEvent]:
    """All injected-fault events of a run, in order.

    Raises :class:`~repro.sim.errors.SimulationError` if the trace
    overflowed its capacity: a truncated log cannot be trusted as a
    fault history (the missing tail may well contain injections), and
    diffing it against a replay would produce spurious matches.
    """
    if trace.truncated:
        raise SimulationError(
            f"fault history requested from a truncated trace "
            f"({trace.dropped} events dropped at capacity "
            f"{trace.capacity}); raise the capacity or use an "
            f"unbounded Trace()"
        )
    return trace.with_prefix("fault.")


def fault_signature(trace: Trace) -> List[str]:
    """Replay-comparable rendering of a run's fault history.

    Two runs of the same plan on the same workload must produce equal
    signatures; ``repro faults`` demonstrates exactly that.
    """
    return [str(event) for event in fault_history(trace)]
