"""Zynq-style (hardcore PS + FPGA PL) system model.

Section VI: "Current work in progress includes complete Zynq (AXI4)
integration."  Section II-B explains *why* this matters: Molen-style
coupling "cannot be used in hardcore processors such as the Zynq
system designed by Xilinx", while Ouessant — being an ordinary bus
peripheral — ports cleanly.

The model captures what actually changes on a Zynq:

* the PL interconnect speaks **AXI4** (long bursts);
* the hard ARM reaches PL registers through an **M_AXI_GP** port,
  crossing the PS/PL bridge — each access pays a bridge latency on
  top of the bus transaction (the famous "GP port round trip");
* the OCP reaches DDR through an **S_AXI_HP** port — high throughput,
  but a higher first-beat latency than on-chip SRAM.

No instruction-set simulator runs here (the ARM is not the bottleneck
and is out of scope); the driver timing comes from the register-access
transactions, exactly like the Leon3 system.
"""

from __future__ import annotations

from typing import List, Optional

from .bus.protocol import AXI4, BusProtocol
from .core.coprocessor import OuessantCoprocessor
from .rac.base import RAC
from .sim.errors import ConfigurationError
from .system import SoC

#: extra PL-clock cycles for one PS->PL register access (GP port)
DEFAULT_GP_BRIDGE_LATENCY = 12
#: first-beat latency of DDR through the HP port, in PL cycles
DEFAULT_HP_DDR_LATENCY = 6


class ZynqSoC(SoC):
    """A Zynq-7000-like platform hosting Ouessant coprocessors.

    Parameters
    ----------
    racs:
        Accelerators; one OCP per RAC, all in the PL.
    gp_bridge_latency:
        Added wait states on every CPU register access (PS->PL).
    hp_ddr_latency:
        First-beat latency of the DDR behind the HP port.
    """

    def __init__(
        self,
        racs: Optional[List[RAC]] = None,
        gp_bridge_latency: int = DEFAULT_GP_BRIDGE_LATENCY,
        hp_ddr_latency: int = DEFAULT_HP_DDR_LATENCY,
        protocol: BusProtocol = AXI4,
        **kwargs,
    ) -> None:
        if gp_bridge_latency < 0 or hp_ddr_latency < 0:
            raise ConfigurationError("bridge latencies must be >= 0")
        # hard processor: no ISS on the PL clock
        kwargs.setdefault("with_cpu", False)
        if "memory" not in kwargs:
            # the PS DDR: open-row DRAM behind the HP port
            from .mem.sdram import SDRAM
            kwargs["memory"] = SDRAM(
                "ddr", size_bytes=16 << 20,
                cas_latency=hp_ddr_latency,
                row_miss_penalty=max(1, 2 * hp_ddr_latency),
            )
        super().__init__(racs=None, protocol=protocol, **kwargs)
        self.gp_bridge_latency = gp_bridge_latency
        for rac in racs or []:
            self.add_ocp(rac)

    def add_ocp(self, rac: RAC, index: Optional[int] = None,
                **kwargs) -> OuessantCoprocessor:
        ocp = super().add_ocp(rac, index, **kwargs)
        # PS->PL GP-port crossing: the register window answers late
        ocp.interface.access_latency = self.gp_bridge_latency
        return ocp


def molen_portability_note() -> str:
    """Why the Molen baseline has no Zynq equivalent (Section II-B)."""
    return (
        "Molen integrates between the processor pipeline and the bus; "
        "on a Zynq the ARM cores are hard silicon, so that interface "
        "is not accessible. Ouessant attaches as a regular AXI slave "
        "plus master, which the PS/PL ports provide natively."
    )
