"""Comparison systems from Section II: SW, PIO slave, DMA slave, Molen."""

from .dma_slave import (
    BurstSlaveAccelerator,
    DMAHarness,
    IN_WINDOW,
    OUT_WINDOW,
    SLAVE_WINDOW_BYTES,
)
from .molen import MolenEstimate, molen_run_estimate
from .pio_slave import PIOHarness, SlaveAccelerator
from .software import (
    SoftwareRun,
    software_dft_direct,
    software_fft,
    software_idct,
    software_memcpy,
)

__all__ = [
    "BurstSlaveAccelerator",
    "DMAHarness",
    "IN_WINDOW",
    "MolenEstimate",
    "OUT_WINDOW",
    "PIOHarness",
    "SLAVE_WINDOW_BYTES",
    "SlaveAccelerator",
    "SoftwareRun",
    "molen_run_estimate",
    "software_dft_direct",
    "software_fft",
    "software_idct",
    "software_memcpy",
]
