"""Molen-style tightly-coupled coprocessor model.

Section II-A: "The Molen polymorphic processor is based on a small
dedicated instruction set ... The coprocessor is then integrated
between the processor and the bus, providing an extension to the
instruction set of the GPP.  This approach is completely transparent
and provides acceleration with a very low time overhead.  However, it
requires access to the bus/processor interface, and it requires one
accelerator per processor."

Because Molen sits *inside* the processor pipeline it cannot be built
as a bus peripheral in this SoC; we model its published cost structure
analytically so the design-space comparison of Section II can be
quantified:

* near-zero start overhead (a pipeline-integrated ``execute`` op),
* transfers through exchange registers at one word per cycle,
* the CPU is **blocked** for the whole operation (no overlap), and
* structural constraints: one accelerator per core, soft-core only.
"""

from __future__ import annotations

from dataclasses import dataclass

#: cycles for the Molen `set`/`execute` instruction pair
MOLEN_START_OVERHEAD = 4
#: exchange-register transfer rate (words per cycle)
MOLEN_WORDS_PER_CYCLE = 1


@dataclass(frozen=True)
class MolenEstimate:
    """Cycle estimate + constraint report for a Molen-style run."""

    total_cycles: int
    transfer_cycles: int
    compute_cycles: int
    start_overhead: int
    cpu_blocked_cycles: int
    needs_pipeline_access: bool = True
    one_accelerator_per_core: bool = True
    hardcore_compatible: bool = False

    @property
    def constraints(self) -> str:
        return (
            "requires bus/processor interface access; "
            "one accelerator per processor; "
            "not usable with hardcore CPUs (e.g. Zynq PS)"
        )


def molen_run_estimate(
    words_in: int, words_out: int, compute_latency: int
) -> MolenEstimate:
    """Cycles for one operation on a Molen-integrated accelerator.

    The accelerator datapath is assumed identical to the RAC (same
    ``compute_latency``); only the integration differs.  Input
    streaming overlaps computation start exactly as in the RAC model,
    but the CPU cannot do anything else meanwhile -- the blocked time
    *is* the total time.
    """
    if words_in < 0 or words_out < 0 or compute_latency < 0:
        raise ValueError("negative quantities make no sense here")
    transfer = (words_in + words_out) // MOLEN_WORDS_PER_CYCLE
    total = MOLEN_START_OVERHEAD + transfer + compute_latency
    return MolenEstimate(
        total_cycles=total,
        transfer_cycles=transfer,
        compute_cycles=compute_latency,
        start_overhead=MOLEN_START_OVERHEAD,
        cpu_blocked_cycles=total,
    )
