"""Pure-software baselines (the "SW" column of Table I).

Each helper assembles the corresponding hand-written kernel from
:mod:`repro.cpu.kernels`, runs it to completion on the GPP
instruction-set simulator in fast mode, and returns both the computed
results and the measured cycle count.  Nothing is modelled with closed
formulas: the cycles are what the ISS actually executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..cpu.assembler import assemble
from ..cpu.cpu import CPU
from ..cpu.isa import CostModel
from ..cpu import kernels
from ..mem.memory import Memory

_TEXT_BASE = 0x0000_0000
_DATA_BASE = 0x0008_0000
_MEM_BYTES = 1 << 20


@dataclass
class SoftwareRun:
    """Outcome of a software baseline execution."""

    cycles: int
    instructions: int
    outputs: dict


def _fresh_cpu(cost_model: "CostModel | None" = None) -> CPU:
    memory = Memory("ram", _MEM_BYTES)
    return CPU(memory=memory, memory_base=0, cost_model=cost_model)


def _resign(words: Sequence[int]) -> List[int]:
    return [w - (1 << 32) if w & (1 << 31) else w for w in words]


def software_idct(
    block: Sequence[Sequence[int]],
    cost_model: "CostModel | None" = None,
) -> Tuple[List[List[int]], SoftwareRun]:
    """2-D 8x8 IDCT in software; returns (block, measurement)."""
    program = assemble(
        kernels.idct_sw_source(), text_base=_TEXT_BASE, data_base=_DATA_BASE
    )
    cpu = _fresh_cpu(cost_model)
    cpu.load(program)
    flat = [int(v) & 0xFFFFFFFF for row in block for v in row]
    cpu.memory.load_words(program.address_of("idct_in"), flat)
    cycles = cpu.run()
    raw = cpu.memory.dump_words(program.address_of("idct_out"), 64)
    signed = _resign(raw)
    result = [signed[8 * r : 8 * r + 8] for r in range(8)]
    return result, SoftwareRun(cycles, cpu.instret, {"block": result})


def software_dft_direct(
    re: Sequence[int],
    im: Sequence[int],
    cost_model: "CostModel | None" = None,
) -> Tuple[Tuple[List[int], List[int]], SoftwareRun]:
    """Direct O(N^2) Q15 DFT in software (the Table I SW scale)."""
    n = len(re)
    program = assemble(
        kernels.dft_sw_source(n), text_base=_TEXT_BASE, data_base=_DATA_BASE
    )
    cpu = _fresh_cpu(cost_model)
    cpu.load(program)
    cpu.memory.load_words(
        program.address_of("xr"), [int(v) & 0xFFFFFFFF for v in re]
    )
    cpu.memory.load_words(
        program.address_of("xi"), [int(v) & 0xFFFFFFFF for v in im]
    )
    cycles = cpu.run()
    yr = _resign(cpu.memory.dump_words(program.address_of("yr"), n))
    yi = _resign(cpu.memory.dump_words(program.address_of("yi"), n))
    return (yr, yi), SoftwareRun(cycles, cpu.instret, {"re": yr, "im": yi})


def software_fft(
    re: Sequence[int],
    im: Sequence[int],
    cost_model: "CostModel | None" = None,
) -> Tuple[Tuple[List[int], List[int]], SoftwareRun]:
    """Radix-2 FFT in software (ablation: the best possible SW DFT)."""
    n = len(re)
    program = assemble(
        kernels.fft_sw_source(n), text_base=_TEXT_BASE, data_base=_DATA_BASE
    )
    cpu = _fresh_cpu(cost_model)
    cpu.load(program)
    cpu.memory.load_words(
        program.address_of("xr"), [int(v) & 0xFFFFFFFF for v in re]
    )
    cpu.memory.load_words(
        program.address_of("xi"), [int(v) & 0xFFFFFFFF for v in im]
    )
    cycles = cpu.run()
    yr = _resign(cpu.memory.dump_words(program.address_of("xr"), n))
    yi = _resign(cpu.memory.dump_words(program.address_of("xi"), n))
    return (yr, yi), SoftwareRun(cycles, cpu.instret, {"re": yr, "im": yi})


def software_memcpy(
    words: Sequence[int],
    cost_model: "CostModel | None" = None,
) -> Tuple[List[int], SoftwareRun]:
    """CPU copy loop; calibrates the PIO baseline's per-word cost."""
    program = assemble(
        kernels.memcpy_source(len(words)),
        text_base=_TEXT_BASE,
        data_base=_DATA_BASE,
    )
    cpu = _fresh_cpu(cost_model)
    cpu.load(program)
    cpu.memory.load_words(
        program.address_of("src"), [int(v) & 0xFFFFFFFF for v in words]
    )
    cycles = cpu.run()
    out = cpu.memory.dump_words(program.address_of("dst"), len(words))
    return out, SoftwareRun(cycles, cpu.instret, {"dst": out})
