"""Classical bus-slave accelerator with programmed I/O.

Section II-A: "The typical way is to connect coprocessors on a bus ...
usually seen as slaves, with different registers for the
configuration."  In the simplest (and very common) variant the GPP
feeds data word by word through a data register and polls a status
register -- no DMA, no microcode.

:class:`SlaveAccelerator` is that peripheral, wrapping the *same*
datapath models the RACs use so the comparison against Ouessant is
purely about integration style.  :class:`PIOHarness` plays the GPP
driver, with every access a real (cycle-charged) bus transaction.

Register map (byte offsets):

====== =========================================================
0x00   CTRL: bit0 START, bit2 DONE (write 0 to acknowledge)
0x04   DATA_IN: write pushes one word into the input buffer
0x08   DATA_OUT: read pops one word from the output buffer
====== =========================================================
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..bus.bus import SystemBus
from ..bus.types import AccessKind, BusRequest, BusSlave
from ..sim.errors import DriverError
from ..sim.kernel import Component, Simulator
from ..sim.tracing import Stats

REG_CTRL = 0x00
REG_DATA_IN = 0x04
REG_DATA_OUT = 0x08

CTRL_START = 1 << 0
CTRL_DONE = 1 << 2


class SlaveAccelerator(Component, BusSlave):
    """Accelerator datapath behind plain slave registers.

    Parameters
    ----------
    compute_fn:
        Maps the list of collected input words to output words (use the
        same golden function as the equivalent RAC).
    items_in / items_out:
        Words consumed/produced per operation.
    compute_latency:
        Datapath cycles between START and DONE (identical to the
        matching RAC's latency so only the integration differs).
    """

    access_latency = 0

    def __init__(
        self,
        name: str,
        compute_fn: Callable[[List[int]], List[int]],
        items_in: int,
        items_out: int,
        compute_latency: int,
    ) -> None:
        Component.__init__(self, name)
        self.compute_fn = compute_fn
        self.items_in = items_in
        self.items_out = items_out
        self.compute_latency = compute_latency
        self.stats = Stats()
        self._in: List[int] = []
        self._out: List[int] = []
        self._ctrl = 0
        self._timer = 0
        self._running = False

    # -- slave interface --------------------------------------------------
    def read_word(self, offset: int) -> int:
        if offset == REG_CTRL:
            return self._ctrl
        if offset == REG_DATA_OUT:
            if not self._out:
                return 0  # reading past the end returns junk, like HW
            return self._out.pop(0)
        return 0

    def write_word(self, offset: int, value: int) -> None:
        if offset == REG_CTRL:
            if value & CTRL_START and not self._running:
                self._begin()
            if not value:
                self._ctrl = 0
        elif offset == REG_DATA_IN:
            self._in.append(value & 0xFFFFFFFF)

    def _begin(self) -> None:
        if len(self._in) < self.items_in:
            raise DriverError(
                f"{self.name}: started with {len(self._in)} of "
                f"{self.items_in} input words"
            )
        self._running = True
        self._ctrl = CTRL_START
        self._timer = self.compute_latency

    def next_activity(self):
        if not self._running:
            return None  # woken by a CTRL write over the bus
        # datapath latency burn-down; the compute fires at expiry
        return self.now + self._timer

    def on_skip(self, cycles: int) -> None:
        if self._running:
            self._timer -= cycles

    def tick(self) -> None:
        if not self._running:
            return
        if self._timer > 0:
            self._timer -= 1
            return
        inputs = self._in[: self.items_in]
        self._in = self._in[self.items_in:]
        self._out = list(self.compute_fn(inputs))
        if len(self._out) != self.items_out:
            raise DriverError(
                f"{self.name}: datapath produced {len(self._out)} words, "
                f"expected {self.items_out}"
            )
        self._running = False
        self._ctrl = CTRL_DONE
        self.stats.incr("operations")

    def reset(self) -> None:
        self._in = []
        self._out = []
        self._ctrl = 0
        self._timer = 0
        self._running = False


class PIOHarness:
    """The GPP-side driver loop for a :class:`SlaveAccelerator`.

    Every word in and out is an individual bus transaction, plus a poll
    loop on CTRL -- the cost structure Ouessant was designed to kill.
    """

    def __init__(
        self, sim: Simulator, bus: SystemBus, base: int,
        master: str = "cpu",
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.base = base
        self.master = master
        self.stats = Stats()

    def _write(self, offset: int, value: int) -> None:
        transfer = self.bus.submit(
            BusRequest(
                master=self.master, kind=AccessKind.WRITE,
                address=self.base + offset, burst=1,
                data=[value & 0xFFFFFFFF], priority=0,
            )
        )
        self.sim.run_until(lambda: transfer.done, what="PIO write")

    def _read(self, offset: int) -> int:
        transfer = self.bus.submit(
            BusRequest(
                master=self.master, kind=AccessKind.READ,
                address=self.base + offset, burst=1, priority=0,
            )
        )
        self.sim.run_until(lambda: transfer.done, what="PIO read")
        return transfer.data[0]

    def run(self, inputs: List[int], n_outputs: int) -> "tuple[List[int], int]":
        """Push inputs, start, poll, pull outputs; returns (out, cycles)."""
        begin = self.sim.cycle
        for word in inputs:
            self._write(REG_DATA_IN, word)
        self._write(REG_CTRL, CTRL_START)
        polls = 0
        while not self._read(REG_CTRL) & CTRL_DONE:
            polls += 1
            if polls > 1_000_000:
                raise DriverError("PIO poll timeout")
        outputs = [self._read(REG_DATA_OUT) for _ in range(n_outputs)]
        self._write(REG_CTRL, 0)
        cycles = self.sim.cycle - begin
        self.stats.incr("runs")
        self.stats.incr("cycles", cycles)
        self.stats.incr("polls", polls)
        return outputs, cycles
