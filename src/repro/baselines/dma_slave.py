"""Bus-slave accelerator fed by a separate DMA peripheral.

Section II-A's middle option: "Communication can be offloaded to a
Direct Memory Access (DMA) peripheral, in order to free GPP time" --
but "the GPP is still responsible for scheduling transfers and
launching operations".  The GPP must program the DMA engine twice
(in and out), take two interrupts, and start the accelerator itself.

:class:`BurstSlaveAccelerator` is the peripheral (same datapaths as the
RACs, but with burst-capable data windows); :class:`DMAHarness` is the
GPP-side scheduling code.
"""

from __future__ import annotations

from typing import Callable, List

from ..bus.bus import SystemBus
from ..bus.types import AccessKind, BusRequest
from ..mem.dma import (
    CTRL_IE as DMA_IE,
    CTRL_START as DMA_START,
    DMAEngine,
    REG_COUNT as DMA_COUNT,
    REG_CTRL as DMA_CTRL,
    REG_DST as DMA_DST,
    REG_SRC as DMA_SRC,
)
from ..sim.errors import DriverError
from ..sim.kernel import Simulator
from .pio_slave import CTRL_DONE, CTRL_START, REG_CTRL, SlaveAccelerator

#: byte offset of the write-only input window inside the slave
IN_WINDOW = 0x1000
#: byte offset of the read-only output window
OUT_WINDOW = 0x2000
#: total slave size (CTRL page + two 4 KB data windows, 1024 words each)
SLAVE_WINDOW_BYTES = 0x3000


class BurstSlaveAccelerator(SlaveAccelerator):
    """Slave accelerator with burstable streaming data windows.

    Any write into ``[IN_WINDOW, OUT_WINDOW)`` pushes a word; any read
    from ``[OUT_WINDOW, ...)`` pops one.  Addresses inside the windows
    are don't-care (the DMA engine naturally increments them).
    """

    def read_word(self, offset: int) -> int:
        if offset >= OUT_WINDOW:
            if not self._out:
                return 0
            return self._out.pop(0)
        return super().read_word(offset)

    def write_word(self, offset: int, value: int) -> None:
        if IN_WINDOW <= offset < OUT_WINDOW:
            self._in.append(value & 0xFFFFFFFF)
            return
        super().write_word(offset, value)


class DMAHarness:
    """GPP driver using a DMA peripheral for the data movement.

    The GPP still performs: 4 register writes + 1 interrupt wait per
    DMA direction, 1 accelerator start, and a completion poll -- the
    scheduling burden the paper contrasts with Ouessant's autonomous
    microcode.
    """

    def __init__(
        self,
        sim: Simulator,
        bus: SystemBus,
        dma: DMAEngine,
        dma_base: int,
        accel_base: int,
        master: str = "cpu",
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.dma = dma
        self.dma_base = dma_base
        self.accel_base = accel_base
        self.master = master

    def _write(self, address: int, value: int) -> None:
        transfer = self.bus.submit(
            BusRequest(
                master=self.master, kind=AccessKind.WRITE, address=address,
                burst=1, data=[value & 0xFFFFFFFF], priority=0,
            )
        )
        self.sim.run_until(lambda: transfer.done, what="harness write")

    def _read(self, address: int) -> int:
        transfer = self.bus.submit(
            BusRequest(
                master=self.master, kind=AccessKind.READ, address=address,
                burst=1, priority=0,
            )
        )
        self.sim.run_until(lambda: transfer.done, what="harness read")
        return transfer.data[0]

    def _dma_move(self, src: int, dst: int, words: int) -> None:
        self._write(self.dma_base + DMA_SRC, src)
        self._write(self.dma_base + DMA_DST, dst)
        self._write(self.dma_base + DMA_COUNT, words)
        self._write(self.dma_base + DMA_CTRL, DMA_START | DMA_IE)
        self.sim.run_until(lambda: self.dma.irq.pending, what="DMA interrupt")
        self.dma.irq.clear()

    def run(
        self, in_addr: int, out_addr: int, n_in: int, n_out: int
    ) -> int:
        """Move data in, run the accelerator, move data out.

        Returns total cycles for the operation as seen by the GPP.
        """
        begin = self.sim.cycle
        self._dma_move(in_addr, self.accel_base + IN_WINDOW, n_in)
        self._write(self.accel_base + REG_CTRL, CTRL_START)
        polls = 0
        while not self._read(self.accel_base + REG_CTRL) & CTRL_DONE:
            polls += 1
            if polls > 1_000_000:
                raise DriverError("accelerator poll timeout")
        self._dma_move(self.accel_base + OUT_WINDOW, out_addr, n_out)
        self._write(self.accel_base + REG_CTRL, 0)
        return self.sim.cycle - begin
