"""Command-line tools for the Ouessant reproduction.

``python -m repro.cli <command>`` provides the developer workflow the
original project shipped alongside its RTL:

* ``assemble``  -- microcode text -> instruction words (hex, one/line)
* ``disasm``    -- instruction words -> Figure 4 style text
* ``lint``      -- system-level SoC integrity analysis (OU1xx), with
  optional ``--firmware`` composition of the microcode pass
* ``verify``    -- microcode static analysis incl. cross-layer
  contracts (OU0xx)
* ``racecheck`` -- cross-OCP concurrency-hazard analysis of a planned
  job stream (OU2xx)
* ``perfbound`` -- static cycle-cost / WCET bound for a microcode
  program (OU3xx), with optional SLA budget check
* ``diag``      -- print diagnostic-catalog entries (code, title,
  severity, doc anchor)
* ``estimate``  -- FPGA resource report for an OCP + RAC
* ``table1``    -- regenerate the paper's Table I
* ``transfer``  -- regenerate the cycles-per-word analysis
* ``faults``    -- fault-injection demo (replay + recovery)
* ``bench``     -- kernel wall-clock benchmark (naive vs idle-skip
  vs vectorized trace-free hot mode)
* ``profile``   -- traced workload run with cycle attribution,
  Perfetto/VCD export and a counter read-back differential check

Every command reads/writes plain text so it composes with shell
pipelines; ``main`` returns a process exit code and is directly
callable from tests.

Exit codes for the analysis commands (``lint``, ``verify``,
``racecheck``, ``perfbound``) are a documented contract for scripting:

* ``0`` -- the program is clean (no error-severity findings),
* ``1`` -- at least one error finding,
* ``2`` -- usage or input problems (unreadable file, bad RAC spec,
  malformed options).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.assembler import assemble_microcode, disassemble
from .core.encoding import decode as ou_decode
from .rac.base import RAC
from .rac.dft import DFTRac
from .rac.fir import FIRRac
from .rac.idct import IDCTRac
from .rac.matmul import MatMulRac
from .rac.scale import PassthroughRac, ScaleRac
from .sim.errors import ReproError


def _make_rac(spec: str) -> RAC:
    """Parse ``idct`` / ``dft:256`` / ``fir:128,16`` / ... into a RAC."""
    name, _, args = spec.partition(":")
    values = [int(v) for v in args.split(",") if v] if args else []
    name = name.lower()
    if name == "idct":
        return IDCTRac()
    if name == "dft":
        return DFTRac(n_points=values[0] if values else 256)
    if name == "fir":
        block = values[0] if values else 128
        taps = values[1] if len(values) > 1 else 16
        return FIRRac(block_size=block, n_taps=taps)
    if name == "matmul":
        return MatMulRac(n=values[0] if values else 8)
    if name == "scale":
        return ScaleRac(block_size=values[0] if values else 16)
    if name in ("passthrough", "loopback"):
        return PassthroughRac(block_size=values[0] if values else 16)
    raise ReproError(
        f"unknown RAC {name!r} (known: idct, dft[:N], fir[:BLOCK,TAPS], "
        "matmul[:N], scale[:N], passthrough[:N])"
    )


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _read_words(path: str) -> List[int]:
    return [int(token, 16) for token in _read_text(path).split()]


def _cmd_assemble(args: argparse.Namespace) -> int:
    words = assemble_microcode(_read_text(args.input))
    for word in words:
        print(f"{word:08x}")
    print(f"# {len(words)} instructions", file=sys.stderr)
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    print(disassemble(_read_words(args.input)))
    return 0


def _load_program(path: str) -> List["object"]:
    """Read microcode (assembly text or hex words) into instructions."""
    text = _read_text(path)
    try:
        words = assemble_microcode(text)
    except ReproError:
        words = [int(token, 16) for token in text.split()]
    return [ou_decode(word) for word in words]


def _parse_bank_sizes(specs: Optional[List[str]]) -> Optional[dict]:
    """Parse repeated ``BANK=WORDS`` options into a window map."""
    if not specs:
        return None
    windows = {}
    for spec in specs:
        bank, sep, words = spec.partition("=")
        if not sep or not bank.isdigit() or not words.isdigit():
            raise ReproError(
                f"bad --bank-size {spec!r} (expected BANK=WORDS)"
            )
        windows[int(bank)] = int(words)
    return windows


def _run_verifier(args: argparse.Namespace,
                  bank_windows: Optional[dict]) -> int:
    from .verify.engine import verify_program

    program = _load_program(args.input)
    rac = _make_rac(args.rac) if args.rac else None
    banks = set(args.banks) if args.banks else None
    extra = {}
    budget = getattr(args, "step_budget", None)
    if budget is not None:  # otherwise keep the engine's default
        extra["step_budget"] = budget
    report = verify_program(
        program,
        rac=rac,
        configured_banks=banks,
        bank_windows=bank_windows,
        suppress=getattr(args, "suppress", None) or (),
        **extra,
    )
    print(report.render_json() if args.json else report.render())
    return 0 if report.clean else 1


def _parse_bank_table(specs: Optional[List[str]]) -> Optional[dict]:
    """Parse repeated ``BANK=ADDR`` options (hex ok) into a table."""
    if not specs:
        return None
    banks = {}
    for spec in specs:
        bank, sep, addr = spec.partition("=")
        if not sep or not bank.isdigit():
            raise ReproError(
                f"bad --bank {spec!r} (expected BANK=ADDR)"
            )
        try:
            banks[int(bank)] = int(addr, 0)
        except ValueError:
            raise ReproError(
                f"bad --bank address {addr!r} (expected an integer, "
                "hex with 0x ok)"
            ) from None
    return banks


def _cmd_lint(args: argparse.Namespace) -> int:
    from .soclint import lint_soc
    from .system import SoC

    racs = [_make_rac(spec) for spec in (args.rac or ["dft:256"])]
    soc = SoC(racs=racs, with_dma=args.with_dma,
              clock_mhz=args.clock)
    firmware = None
    if args.firmware:
        firmware = _load_program(args.firmware)
    if args.budget_cycles is not None and firmware is None:
        raise ReproError(
            "--budget-cycles needs --firmware: the throughput check "
            "bounds a concrete program"
        )
    report = lint_soc(
        soc,
        banks=_parse_bank_table(args.bank),
        firmware=firmware,
        ocp_index=args.ocp,
        technology=args.device,
        budget_cycles=args.budget_cycles,
        suppress=args.suppress or (),
    )
    print(report.render_json() if args.json else report.render())
    return 0 if report.clean else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    return _run_verifier(args, _parse_bank_sizes(args.bank_size))


def _stream_int(doc: dict, key: str) -> Optional[int]:
    """Read an optional integer field; hex strings (``"0x.."``) ok."""
    value = doc.get(key)
    if value is None:
        return None
    try:
        return int(value, 0) if isinstance(value, str) else int(value)
    except (TypeError, ValueError):
        raise ReproError(
            f"bad stream field {key!r}: {value!r} is not an integer"
        ) from None


def _load_stream(path: str) -> dict:
    """Parse a job-stream description JSON file."""
    import json

    try:
        doc = json.loads(_read_text(path))
    except json.JSONDecodeError as exc:
        raise ReproError(f"bad stream file {path!r}: {exc}") from None
    if not isinstance(doc, dict):
        raise ReproError(
            f"bad stream file {path!r}: expected a JSON object"
        )
    return doc


def _cmd_racecheck(args: argparse.Namespace) -> int:
    from .racelint import check_stream
    from .sched.capability import CapabilityTable
    from .sched.job import Job

    doc = _load_stream(args.input)
    specs = doc.get("ocps")
    if not specs or not isinstance(specs, list):
        raise ReproError("stream file needs a non-empty 'ocps' list")
    racs = [_make_rac(str(spec)) for spec in specs]
    capability = None
    table = doc.get("capability")
    if table is not None:
        if not isinstance(table, dict):
            raise ReproError("'capability' must map kind -> OCP list")
        capability = CapabilityTable(
            {str(kind): list(indices)
             for kind, indices in table.items()}
        )
    jobs = []
    for position, entry in enumerate(doc.get("jobs", [])):
        if not isinstance(entry, dict) or not entry.get("kind"):
            raise ReproError(
                f"job #{position}: each job needs at least a 'kind'"
            )
        words = entry.get("words")
        if words is None:
            size = _stream_int(entry, "size")
            if not size or size < 1:
                raise ReproError(
                    f"job #{position}: needs 'words' or a positive "
                    "'size'"
                )
            words = [0] * size
        jobs.append(Job(
            str(entry.get("id", f"job{position}")),
            str(entry["kind"]),
            [int(word) for word in words],
            chain=entry.get("chain"),
        ))
    if not jobs:
        raise ReproError("stream file has no jobs")
    batch_jobs = (args.batch_jobs if args.batch_jobs is not None
                  else _stream_int(doc, "batch_jobs") or 1)
    report = check_stream(
        jobs,
        racs=racs,
        capability=capability,
        batch_jobs=batch_jobs,
        chunk=_stream_int(doc, "chunk") or 64,
        arena_base=_stream_int(doc, "arena_base"),
        arena_stride=_stream_int(doc, "arena_stride"),
        suppress=args.suppress or (),
    )
    print(report.render_json() if args.json else report.render())
    return 0 if report.clean else 1


def _parse_latency(spec: str):
    """Parse ``--mem-latency LO[:HI]`` into a latency contract."""
    from .verify.domain import Interval

    lo_text, sep, hi_text = spec.partition(":")
    try:
        lo = int(lo_text, 0)
        hi = int(hi_text, 0) if sep else lo
    except ValueError:
        raise ReproError(
            f"bad --mem-latency {spec!r} (expected LO or LO:HI cycles)"
        ) from None
    if lo < 0 or hi < lo:
        raise ReproError(
            f"bad --mem-latency {spec!r}: need 0 <= LO <= HI"
        )
    return Interval(lo, hi)


def _cmd_perfbound(args: argparse.Namespace) -> int:
    import json

    from .perfbound import CostModel, RacTiming, bound_program
    from .rac.base import StreamingRAC

    if args.masters < 1:
        raise ReproError(
            f"bad --masters {args.masters}: need at least one"
        )
    program = _load_program(args.input)
    rac = _make_rac(args.rac) if args.rac else None
    timing = RacTiming.of(rac) if isinstance(rac, StreamingRAC) else None
    model = CostModel(
        mem_latency=_parse_latency(args.mem_latency),
        rac=timing,
        masters=args.masters,
    )
    bound = bound_program(
        program, rac,
        model=model,
        sla_cycles=args.sla_cycles,
        suppress=args.suppress or (),
    )
    print(json.dumps(bound.to_json(), indent=2) if args.json
          else bound.render())
    return 0 if bound.clean else 1


#: diagnostic family -> anchor inside docs/ANALYSIS.md
_DIAG_ANCHORS = {
    "OU0": "diagnostics-catalog",
    "OU1": "system-level-analysis-repro-lint",
    "OU2": "concurrency-analysis-repro-racecheck-ou2xx",
    "OU3": "cost-bound-analysis-repro-perfbound-ou3xx",
}


def _cmd_diag(args: argparse.Namespace) -> int:
    from .verify.diagnostics import CATALOG

    codes = [code.upper() for code in args.codes]
    unknown = sorted(set(codes) - set(CATALOG))
    if unknown:
        raise ReproError(
            f"unknown diagnostic code(s): {', '.join(unknown)} "
            "(run 'repro diag' for the full catalog)"
        )
    if not codes:
        for entry in CATALOG.values():
            print(f"{entry.code}  {entry.severity:<8} {entry.title}")
        return 0
    for code in codes:
        entry = CATALOG[code]
        anchor = _DIAG_ANCHORS.get(code[:3], "diagnostics-catalog")
        print(f"{entry.code} [{entry.severity}] {entry.title}")
        print(f"  {entry.description}")
        print(f"  docs: docs/ANALYSIS.md#{anchor}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from .synth import device_by_name, estimate_ocp, utilization_report
    from .system import SoC

    soc = SoC(racs=[_make_rac(args.rac)])
    estimate = estimate_ocp(soc.ocp)
    device = device_by_name(args.device)
    print(utilization_report(estimate.parts, device))
    overhead = estimate.ocp_overhead
    print(f"\nOCP overhead (paper envelope <1000 LUT / <750 FF): {overhead}")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from .core.codegen import as_program, compress_program, expand_program

    words = assemble_microcode(_read_text(args.input))
    program = [ou_decode(word) for word in words]
    transformed = (expand_program(program, check=True) if args.expand
                   else compress_program(program, check=True))
    result = as_program(list(transformed))
    print(result.listing())
    print(
        f"# {len(program)} -> {len(transformed)} instructions",
        file=sys.stderr,
    )
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .core.binary import pack

    words = assemble_microcode(_read_text(args.input))
    data = pack(words)
    with open(args.output, "wb") as handle:
        handle.write(data)
    print(f"packed {len(words)} instructions -> {args.output} "
          f"({len(data)} bytes)", file=sys.stderr)
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .core.binary import unpack

    with open(args.input, "rb") as handle:
        image = unpack(handle.read())
    print(f"OUFW image: {len(image.words)} instructions")
    print(f"banks referenced: {image.banks_referenced}")
    print(disassemble(image.words))
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from .synth.timing import ARTIX7_TECH, SPARTAN6_TECH, timing_report
    from .system import SoC

    technology = SPARTAN6_TECH if args.device == "spartan6" else ARTIX7_TECH
    soc = SoC(racs=[_make_rac(args.rac)])
    report = timing_report(soc.ocp, clock_mhz=args.clock,
                           technology=technology)
    print(report.render())
    return 0 if report.closes else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    from .analysis import render_table_one, table_one

    rows = table_one(dft_points=args.dft_points, environment=args.env)
    print(render_table_one(rows))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults.demo import render_report

    print(render_report(args.seed))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        WORKLOADS,
        render_mpsoc,
        render_results,
        run_benchmarks,
        run_mpsoc_sweep,
        write_report,
    )

    names = args.workloads or None
    for name in names or []:
        if name not in WORKLOADS:
            raise ReproError(
                f"unknown workload {name!r} (known: {', '.join(WORKLOADS)})"
            )
    results = []
    if not args.only_mpsoc:
        results = run_benchmarks(names)
        print(render_results(results))
    sweep = None
    if not args.no_mpsoc:
        try:
            ocp_counts = tuple(
                int(part) for part in args.mpsoc_ocps.split(",") if part
            )
        except ValueError:
            raise ReproError(
                f"bad --mpsoc-ocps {args.mpsoc_ocps!r}: expected "
                "comma-separated OCP counts"
            ) from None
        sweep = run_mpsoc_sweep(
            n_jobs=args.mpsoc_jobs,
            ocp_counts=ocp_counts,
            batch_jobs=args.mpsoc_batch,
        )
        print(render_mpsoc(sweep))
    output = args.output or "BENCH_simulator.json"
    write_report(results, output, mpsoc=sweep)
    print(f"# wrote {output}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .core.perf import N_PERF_REGISTERS, PERF_BASE, PERF_NAMES
    from .obs import (attribute_run, derive_counters, reconstruct_spans,
                      to_perfetto, to_vcd)
    from .obs.workloads import PROFILE_WORKLOADS
    from .sw.driver import OuessantDriver

    names = args.workloads or list(PROFILE_WORKLOADS)
    for name in names:
        if name not in PROFILE_WORKLOADS:
            raise ReproError(
                f"unknown workload {name!r} "
                f"(known: {', '.join(PROFILE_WORKLOADS)})"
            )

    status = 0
    reports = []
    for name in names:
        run = PROFILE_WORKLOADS[name](idle_skip=not args.no_idle_skip)
        soc = run.soc
        ocp = soc.ocps[run.ocp_index]
        spans = reconstruct_spans(soc.sim.trace,
                                  end_cycle=run.total_cycles)
        report = attribute_run(soc, workload=name,
                               ocp_index=run.ocp_index,
                               total_cycles=run.total_cycles, spans=spans)

        # differential check: the counters software reads back over
        # the bus must equal the values re-derived from the trace alone
        derived = derive_counters(soc.sim.trace, ocp,
                                  end_cycle=run.total_cycles)
        driver = OuessantDriver(soc, ocp_index=run.ocp_index)
        readback = {}
        for index in range(N_PERF_REGISTERS):
            value, _ = driver.read_register(PERF_BASE + 4 * index)
            readback[PERF_NAMES[index]] = value
        ok = report.consistent and readback == derived
        if not ok:
            status = 1
            print(f"# {name}: INCONSISTENT "
                  f"(readback={readback} derived={derived} "
                  f"consistent={report.consistent})", file=sys.stderr)

        reports.append((run, spans, report, readback))
        if not args.json:
            print(report.render())
            print(f"  counters   {'ok' if ok else 'MISMATCH'} "
                  f"({len(spans)} spans, bus read-back == trace-derived)")

    if args.json:
        payload = [r.as_dict() for _, _, r, _ in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    if args.perfetto:
        merged = {"displayTimeUnit": "ms", "traceEvents": []}
        for run, spans, _, _ in reports:
            doc = to_perfetto(spans, trace=run.soc.sim.trace,
                              process_name=run.name)
            merged["traceEvents"].extend(doc["traceEvents"])
        with open(args.perfetto, "w", encoding="utf-8") as handle:
            json.dump(merged if len(reports) > 1 else doc, handle)
        print(f"# wrote {args.perfetto}", file=sys.stderr)
    if args.vcd:
        run, spans, _, _ = reports[0]
        if len(reports) > 1:
            print(f"# --vcd: writing first workload ({run.name}) only",
                  file=sys.stderr)
        with open(args.vcd, "w", encoding="utf-8") as handle:
            handle.write(to_vcd(spans, trace=run.soc.sim.trace))
        print(f"# wrote {args.vcd}", file=sys.stderr)
    return status


def _cmd_transfer(args: argparse.Namespace) -> int:
    from .analysis import measure_transfer_efficiency

    m = measure_transfer_efficiency(args.words)
    print(f"{m.words} words in {m.cycles} cycles "
          f"= {m.cycles_per_word:.2f} cycles/word")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Ouessant reproduction toolbox"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("assemble", help="microcode text -> hex words")
    p.add_argument("input", help="source file ('-' for stdin)")
    p.set_defaults(fn=_cmd_assemble)

    p = sub.add_parser("disasm", help="hex words -> microcode text")
    p.add_argument("input", help="hex word file ('-' for stdin)")
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser(
        "lint",
        help="system-level SoC integrity analysis "
             "(exit: 0 clean, 1 errors, 2 usage)",
    )
    p.add_argument("--rac", action="append", metavar="SPEC",
                   help="accelerator spec, e.g. dft:256; repeat for "
                        "multiple OCPs (default: dft:256)")
    p.add_argument("--firmware", metavar="FILE",
                   help="microcode (asm or hex) to cross-check "
                        "against the live memory map")
    p.add_argument("--bank", action="append", metavar="BANK=ADDR",
                   help="driver bank table entry, hex ok "
                        "(repeatable, e.g. --bank 1=0x40002000)")
    p.add_argument("--ocp", type=int, default=0,
                   help="coprocessor index the bank table targets")
    p.add_argument("--clock", type=float, default=50.0,
                   help="system clock constraint in MHz (paper: 50)")
    p.add_argument("--device", default="artix7",
                   choices=("artix7", "spartan6"))
    p.add_argument("--with-dma", action="store_true",
                   help="include the DMA peripheral in the system")
    p.add_argument("--budget-cycles", type=int, default=None,
                   help="per-run throughput budget: the firmware's "
                        "static worst case must fit it (OU162/OU163; "
                        "needs --firmware)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report")
    p.add_argument("--suppress", nargs="*", metavar="CODE",
                   help="diagnostic codes to suppress (e.g. OU141)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "verify",
        help="full static analysis with cross-layer contracts "
             "(exit: 0 clean, 1 errors, 2 usage)",
    )
    p.add_argument("input", help="source or hex file ('-' for stdin)")
    p.add_argument("--rac", help="accelerator spec, e.g. dft:256")
    p.add_argument("--banks", type=int, nargs="*",
                   help="configured bank numbers")
    p.add_argument("--bank-size", action="append", metavar="BANK=WORDS",
                   help="mapped window of a bank in words (repeatable)")
    p.add_argument("--step-budget", type=int,
                   help="flag programs executing more instructions")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report")
    p.add_argument("--suppress", nargs="*", metavar="CODE",
                   help="diagnostic codes to suppress (e.g. OU010)")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "racecheck",
        help="static concurrency-hazard analysis of a planned job "
             "stream (exit: 0 clean, 1 hazards, 2 usage)",
    )
    p.add_argument("input",
                   help="stream description JSON ('-' for stdin): "
                        "{'ocps': [SPEC, ...], 'jobs': [{'id', 'kind', "
                        "'size'|'words', 'chain'?}, ...], "
                        "'capability'?, 'batch_jobs'?, 'chunk'?, "
                        "'arena_base'?, 'arena_stride'?}")
    p.add_argument("--batch-jobs", type=int, default=None,
                   help="override the stream's batching degree")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report")
    p.add_argument("--suppress", nargs="*", metavar="CODE",
                   help="diagnostic codes to suppress (e.g. OU205)")
    p.set_defaults(fn=_cmd_racecheck)

    p = sub.add_parser(
        "perfbound",
        help="static cycle-cost / WCET bound for a microcode program "
             "(exit: 0 clean, 1 errors, 2 usage)",
    )
    p.add_argument("input", help="source or hex file ('-' for stdin)")
    p.add_argument("--rac", help="accelerator spec, e.g. dft:256")
    p.add_argument("--mem-latency", default="1", metavar="LO[:HI]",
                   help="memory-latency contract in cycles the bound "
                        "must cover (default: 1)")
    p.add_argument("--masters", type=int, default=1,
                   help="bus masters in the target system; >1 emits "
                        "OU303 (contention not modelled)")
    p.add_argument("--sla-cycles", type=int, default=None,
                   help="cycle budget: emit OU304 (error) when the "
                        "worst case exceeds it")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report")
    p.add_argument("--suppress", nargs="*", metavar="CODE",
                   help="diagnostic codes to suppress (e.g. OU301)")
    p.set_defaults(fn=_cmd_perfbound)

    p = sub.add_parser(
        "diag",
        help="print diagnostic-catalog entries (no codes: list all)",
    )
    p.add_argument("codes", nargs="*", metavar="CODE",
                   help="diagnostic codes to describe, e.g. OU300")
    p.set_defaults(fn=_cmd_diag)

    p = sub.add_parser("estimate", help="FPGA resource report")
    p.add_argument("--rac", default="dft:256")
    p.add_argument("--device", default="xc7a100t")
    p.set_defaults(fn=_cmd_estimate)

    p = sub.add_parser("compress",
                       help="rewrite unrolled transfers with hardware loops")
    p.add_argument("input", help="source file ('-' for stdin)")
    p.add_argument("--expand", action="store_true",
                   help="lower to the base ISA instead")
    p.set_defaults(fn=_cmd_compress)

    p = sub.add_parser("pack", help="microcode text -> OUFW image")
    p.add_argument("input", help="source file ('-' for stdin)")
    p.add_argument("output", help="image file to write")
    p.set_defaults(fn=_cmd_pack)

    p = sub.add_parser("info", help="inspect an OUFW image")
    p.add_argument("input", help="image file")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("timing", help="static timing closure check")
    p.add_argument("--rac", default="dft:256")
    p.add_argument("--clock", type=float, default=50.0,
                   help="constraint in MHz (paper: 50)")
    p.add_argument("--device", default="artix7",
                   choices=("artix7", "spartan6"))
    p.set_defaults(fn=_cmd_timing)

    p = sub.add_parser("table1", help="regenerate Table I")
    p.add_argument("--dft-points", type=int, default=256)
    p.add_argument("--env", default="linux",
                   choices=("linux", "baremetal"))
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser(
        "bench",
        help="kernel wall-clock benchmark: naive vs idle-skip "
             "vs vectorized (hot)",
    )
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: all)")
    p.add_argument("--output", "-o",
                   help="machine-readable JSON report path "
                        "(default: BENCH_simulator.json)")
    p.add_argument("--mpsoc-jobs", type=int, default=192,
                   help="jobs in the MPSoC scale-out sweep "
                        "(default: 192)")
    p.add_argument("--mpsoc-ocps", default="1,2,4,8",
                   help="comma-separated OCP counts for the sweep "
                        "(default: 1,2,4,8)")
    p.add_argument("--mpsoc-batch", type=int, default=4,
                   help="jobs fused per batched dispatch (default: 4)")
    p.add_argument("--no-mpsoc", action="store_true",
                   help="skip the MPSoC scale-out sweep")
    p.add_argument("--only-mpsoc", action="store_true",
                   help="run only the MPSoC sweep (skip the kernel "
                        "workloads)")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "profile",
        help="run a workload with full tracing and attribute its "
             "cycles (exit: 0 consistent, 1 mismatch, 2 usage)",
    )
    p.add_argument("workloads", nargs="*",
                   help="workload names (default: all; known: "
                        "jpeg-idct, dft)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable attribution report")
    p.add_argument("--perfetto", metavar="FILE",
                   help="write Chrome/Perfetto trace-event JSON here")
    p.add_argument("--vcd", metavar="FILE",
                   help="write span lanes as a VCD waveform here")
    p.add_argument("--no-idle-skip", action="store_true",
                   help="simulate every cycle naively (same counters, "
                        "slower wall clock)")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("transfer", help="cycles-per-word analysis")
    p.add_argument("--words", type=int, default=1024)
    p.set_defaults(fn=_cmd_transfer)

    p = sub.add_parser(
        "faults",
        help="fault-injection demo: replay determinism + recovery",
    )
    p.add_argument("--seed", type=int, default=2024,
                   help="fault plan seed (same seed = same faults)")
    p.set_defaults(fn=_cmd_faults)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
