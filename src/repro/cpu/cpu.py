"""The GPP instruction-set simulator (Leon3 stand-in).

Two execution modes share one instruction-execution core:

* **fast mode** (:meth:`CPU.run`): a tight fetch/execute loop with no
  simulator in sight, used for the pure-software baselines of Table I
  (hundreds of thousands to millions of instructions).  Loads and
  stores must stay inside the directly attached memory.
* **ticked mode** (:meth:`CPU.tick` under a
  :class:`~repro.sim.kernel.Simulator`): one instruction retires per
  cost-model cycles; accesses outside the direct memory window become
  bus transactions (MMIO) -- this is how assembly drivers program the
  Ouessant coprocessor's registers in the integration tests.

Both modes charge cycles through the same :class:`~repro.cpu.isa.CostModel`,
so a kernel measured in fast mode costs exactly what it would cost
inline in a ticked run (as long as it performs no MMIO).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bus.bus import SystemBus
from ..bus.irq import IRQController
from ..bus.types import AccessKind, BusRequest, BusTransfer
from ..mem.memory import Memory
from ..sim.errors import SimulationError
from ..sim.kernel import Component
from ..sim.tracing import Stats
from ..utils import bits
from .assembler import AssembledProgram
from .isa import CostModel, Instruction, Op, decode

_MASK = bits.WORD_MASK
_SIGN = 1 << 31


def _signed(value: int) -> int:
    return value - (1 << 32) if value & _SIGN else value


class CPU(Component):
    """In-order scalar RISC core with direct memory + MMIO over a bus.

    Parameters
    ----------
    memory:
        Directly attached RAM (instruction + data).  Accesses inside
        ``[memory_base, memory_base + size)`` cost ``cost_model.load``
        cycles (warm-cache model); everything else goes over ``bus``.
    bus:
        Optional system bus for MMIO (required in ticked mode when the
        program touches peripheral addresses).
    irq:
        Optional interrupt controller observed by ``wfi``.
    """

    def __init__(
        self,
        name: str = "cpu",
        memory: Optional[Memory] = None,
        memory_base: int = 0,
        bus: Optional[SystemBus] = None,
        irq: Optional[IRQController] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        super().__init__(name)
        self.memory = memory
        self.memory_base = memory_base
        self.bus = bus
        self.irq = irq
        if irq is not None:
            # a WFI'd CPU declares indefinite idleness; interrupt
            # edges must re-poll it under vectorized dispatch
            irq.watch(self)
        self.cost = cost_model or CostModel()
        self.regs: List[int] = [0] * 32
        self.pc = 0
        self.halted = True
        self.cycles = 0
        self.instret = 0
        self.stats = Stats()
        self._decoded: Dict[int, Instruction] = {}
        self._stall = 0
        self._pending: Optional[BusTransfer] = None
        self._pending_rd: Optional[int] = None

    # -- program loading ------------------------------------------------
    def load(self, program: AssembledProgram) -> None:
        """Copy a program into memory, predecode it and point pc at it."""
        if self.memory is None:
            raise SimulationError("CPU has no memory to load into")
        self.memory.load_words(
            program.text_base - self.memory_base, program.text
        )
        if program.data:
            self.memory.load_words(
                program.data_base - self.memory_base, program.data
            )
        self._decoded = {}
        for index, word in enumerate(program.text):
            self._decoded[program.text_base + 4 * index] = decode(word)
        self.pc = program.entry
        self.halted = False

    def reset(self) -> None:
        self.regs = [0] * 32
        self.pc = 0
        self.halted = True
        self.cycles = 0
        self.instret = 0
        self._stall = 0
        self._pending = None
        self._pending_rd = None

    # -- register access -----------------------------------------------
    def reg(self, index: int) -> int:
        """Unsigned value of a register."""
        return self.regs[index]

    def reg_signed(self, index: int) -> int:
        return _signed(self.regs[index])

    def set_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & _MASK

    # -- fast mode --------------------------------------------------------
    def run(self, max_instructions: int = 50_000_000) -> int:
        """Execute until ``halt``; returns cycles consumed by this call.

        MMIO (any access outside the direct memory window) raises
        :class:`SimulationError` -- fast mode is for pure-software
        kernels only.
        """
        start_cycles = self.cycles
        executed = 0
        while not self.halted:
            if executed >= max_instructions:
                raise SimulationError(
                    f"fast run exceeded {max_instructions} instructions"
                )
            instr = self._fetch(self.pc)
            self.cycles += self._execute(instr, allow_mmio=False)
            executed += 1
        self.instret += executed
        return self.cycles - start_cycles

    # -- ticked mode -------------------------------------------------------
    def tick(self) -> None:
        if self.halted:
            return
        if self._pending is not None:
            self.cycles += 1
            if not self._pending.done:
                return
            if self._pending_rd is not None:
                self.set_reg(self._pending_rd, self._pending.data[0])
            self._pending = None
            self._pending_rd = None
            return
        if self._stall > 0:
            self._stall -= 1
            self.cycles += 1
            return
        instr = self._fetch(self.pc)
        if instr.op is Op.WFI and (self.irq is None or not self.irq.any_pending()):
            self.cycles += 1
            self.stats.incr("wfi_cycles")
            return  # stay on the wfi until an interrupt arrives
        cost = self._execute(instr, allow_mmio=True)
        self.cycles += 1
        self.instret += 1
        if self._pending is None:
            self._stall = cost - 1

    def next_activity(self):
        if self.halted:
            return None
        if self._pending is not None:
            # waiting on an MMIO bus transfer; the bus wakes the system
            return self.now if self._pending.done else None
        if self._stall > 0:
            # multi-cycle instruction cost: pure counter burn-down
            return self.now + self._stall
        # consult only the predecoded map -- next_activity must not
        # fault where the naive tick would (a bad pc faults in tick)
        instr = self._decoded.get(self.pc)
        if (instr is not None and instr.op is Op.WFI
                and (self.irq is None or not self.irq.any_pending())):
            return None  # asleep until an interrupt is raised
        return self.now

    def on_skip(self, cycles: int) -> None:
        if self.halted:
            return
        if self._pending is not None:
            self.cycles += cycles
            return
        if self._stall > 0:
            self._stall -= cycles
            self.cycles += cycles
            return
        # skippable only while parked on wfi with no pending interrupt
        self.cycles += cycles
        self.stats.incr("wfi_cycles", cycles)

    # -- core ------------------------------------------------------------
    def _fetch(self, pc: int) -> Instruction:
        instr = self._decoded.get(pc)
        if instr is None:
            word = self._load_word(pc)
            instr = decode(word)
            self._decoded[pc] = instr
        return instr

    def _mem_index(self, address: int) -> Optional[int]:
        if self.memory is None:
            return None
        offset = address - self.memory_base
        if 0 <= offset < self.memory.size_bytes:
            return offset >> 2
        return None

    def _load_word(self, address: int) -> int:
        index = self._mem_index(address)
        if index is None:
            raise SimulationError(
                f"{self.name}: fetch/load outside memory at {address:#x}"
            )
        return self.memory.words[index]

    def _execute(self, instr: Instruction, allow_mmio: bool) -> int:
        """Execute one instruction; returns its cycle cost.

        In ticked mode an MMIO access sets ``self._pending`` and the
        cost is paid by waiting for the bus transfer instead.
        """
        op = instr.op
        regs = self.regs
        pc_next = self.pc + 4

        if op is Op.ADDI:
            self.set_reg(instr.rd, regs[instr.rs1] + instr.imm)
        elif op is Op.LW:
            address = (regs[instr.rs1] + instr.imm) & _MASK
            index = self._mem_index(address)
            if index is not None:
                self.set_reg(instr.rd, self.memory.words[index])
            else:
                self._mmio(AccessKind.READ, address, instr.rd, allow_mmio)
        elif op is Op.SW:
            address = (regs[instr.rs1] + instr.imm) & _MASK
            index = self._mem_index(address)
            if index is not None:
                if instr.rd == 0:
                    self.memory.words[index] = 0
                else:
                    self.memory.words[index] = regs[instr.rd]
            else:
                self._mmio(AccessKind.WRITE, address, instr.rd, allow_mmio)
        elif op is Op.ADD:
            self.set_reg(instr.rd, regs[instr.rs1] + regs[instr.rs2])
        elif op is Op.SUB:
            self.set_reg(instr.rd, regs[instr.rs1] - regs[instr.rs2])
        elif op is Op.MUL:
            self.set_reg(
                instr.rd, _signed(regs[instr.rs1]) * _signed(regs[instr.rs2])
            )
        elif op is Op.AND:
            self.set_reg(instr.rd, regs[instr.rs1] & regs[instr.rs2])
        elif op is Op.OR:
            self.set_reg(instr.rd, regs[instr.rs1] | regs[instr.rs2])
        elif op is Op.XOR:
            self.set_reg(instr.rd, regs[instr.rs1] ^ regs[instr.rs2])
        elif op is Op.SLL:
            self.set_reg(instr.rd, regs[instr.rs1] << (regs[instr.rs2] & 31))
        elif op is Op.SRL:
            self.set_reg(instr.rd, regs[instr.rs1] >> (regs[instr.rs2] & 31))
        elif op is Op.SRA:
            self.set_reg(
                instr.rd, _signed(regs[instr.rs1]) >> (regs[instr.rs2] & 31)
            )
        elif op is Op.SLT:
            self.set_reg(
                instr.rd,
                1 if _signed(regs[instr.rs1]) < _signed(regs[instr.rs2]) else 0,
            )
        elif op is Op.SLTU:
            self.set_reg(instr.rd, 1 if regs[instr.rs1] < regs[instr.rs2] else 0)
        elif op is Op.DIV:
            divisor = _signed(regs[instr.rs2])
            if divisor == 0:
                self.set_reg(instr.rd, _MASK)
            else:
                quotient = int(_signed(regs[instr.rs1]) / divisor)
                self.set_reg(instr.rd, quotient)
        elif op is Op.REM:
            divisor = _signed(regs[instr.rs2])
            if divisor == 0:
                self.set_reg(instr.rd, regs[instr.rs1])
            else:
                dividend = _signed(regs[instr.rs1])
                self.set_reg(instr.rd, dividend - divisor * int(dividend / divisor))
        elif op is Op.ANDI:
            self.set_reg(instr.rd, regs[instr.rs1] & instr.imm)
        elif op is Op.ORI:
            self.set_reg(instr.rd, regs[instr.rs1] | instr.imm)
        elif op is Op.XORI:
            self.set_reg(instr.rd, regs[instr.rs1] ^ instr.imm)
        elif op is Op.SLLI:
            self.set_reg(instr.rd, regs[instr.rs1] << (instr.imm & 31))
        elif op is Op.SRLI:
            self.set_reg(instr.rd, regs[instr.rs1] >> (instr.imm & 31))
        elif op is Op.SRAI:
            self.set_reg(instr.rd, _signed(regs[instr.rs1]) >> (instr.imm & 31))
        elif op is Op.SLTI:
            self.set_reg(
                instr.rd, 1 if _signed(regs[instr.rs1]) < instr.imm else 0
            )
        elif op is Op.LUI:
            self.set_reg(instr.rd, instr.imm << 16)
        elif op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
            a, b = regs[instr.rs1], regs[instr.rs2]
            if op is Op.BEQ:
                taken = a == b
            elif op is Op.BNE:
                taken = a != b
            elif op is Op.BLT:
                taken = _signed(a) < _signed(b)
            elif op is Op.BGE:
                taken = _signed(a) >= _signed(b)
            elif op is Op.BLTU:
                taken = a < b
            else:
                taken = a >= b
            if taken:
                pc_next = self.pc + 4 + 4 * instr.imm
        elif op is Op.JAL:
            self.set_reg(instr.rd, pc_next)
            pc_next = self.pc + 4 + 4 * instr.imm
        elif op is Op.JALR:
            self.set_reg(instr.rd, pc_next)
            pc_next = (regs[instr.rs1] + instr.imm) & ~3 & _MASK
        elif op is Op.HALT:
            self.halted = True
            pc_next = self.pc
        elif op is Op.WFI:
            if not allow_mmio:
                raise SimulationError("wfi is not allowed in fast mode")
            # reached only when an interrupt is already pending
        else:  # pragma: no cover - decode rejects undefined opcodes
            raise SimulationError(f"unimplemented opcode {op}")

        self.pc = pc_next
        return self.cost.cost(op)

    def _mmio(
        self, kind: AccessKind, address: int, reg_index: int, allowed: bool
    ) -> None:
        if not allowed or self.bus is None:
            raise SimulationError(
                f"{self.name}: MMIO access to {address:#x} outside fast-mode memory"
            )
        if kind is AccessKind.READ:
            request = BusRequest(master=self.name, kind=kind,
                                 address=address, priority=0)
            self._pending_rd = reg_index
        else:
            value = 0 if reg_index == 0 else self.regs[reg_index]
            request = BusRequest(master=self.name, kind=kind, address=address,
                                 burst=1, data=[value], priority=0)
            self._pending_rd = None
        self._pending = self.bus.submit(request, waiter=self)
        self.stats.incr("mmio")
