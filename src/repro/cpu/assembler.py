"""Two-pass assembler for the GPP ISA.

Accepts the classic free-form syntax used by the hand-written kernels in
:mod:`repro.cpu.kernels`::

    # comment              ; also a comment
    .text
    entry:
        li   r1, 0x10000       # pseudo: lui + ori (always 2 words)
        la   r2, table         # pseudo: address of a label
        lw   r3, 4(r2)
        addi r3, r3, -1
        bne  r3, r0, entry
        halt
    .data
    table:
        .word 1, 2, 0x30
        .space 16              # bytes, zero filled

Pass 1 sizes everything and collects labels; pass 2 encodes.  Pseudo
instructions expand to a *fixed* number of words so label arithmetic is
stable between passes.

Sections: ``.text`` assembles at ``text_base``, ``.data`` at
``data_base`` (both byte addresses, word aligned).  Labels live in a
single namespace across sections.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.errors import AssemblerError
from ..utils import bits
from .isa import (
    Format,
    Instruction,
    Op,
    encode,
    parse_register,
)

_COMMENT_RE = re.compile(r"[#;].*$")
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\w+)\)$")

#: pseudo-instruction name -> number of emitted words
_PSEUDO_SIZES = {
    "li": 2,
    "la": 2,
    "nop": 1,
    "mv": 1,
    "j": 1,
    "call": 1,
    "ret": 1,
    "ble": 1,
    "bgt": 1,
    "neg": 1,
    "not": 1,
    "beqz": 1,
    "bnez": 1,
}


@dataclass
class AssembledProgram:
    """Output of :func:`assemble`.

    Attributes
    ----------
    text / data:
        Encoded 32-bit words for each section.
    text_base / data_base:
        Byte addresses the sections were assembled at.
    symbols:
        Label name -> absolute byte address.
    """

    text: List[int]
    data: List[int]
    text_base: int
    data_base: int
    symbols: Dict[str, int] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        return self.text_base

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError as exc:
            raise AssemblerError(f"unknown symbol {label!r}") from exc


@dataclass
class _Item:
    """One source statement after pass 1."""

    line: int
    section: str
    address: int
    mnemonic: str
    operands: List[str]
    size_words: int


def _parse_int(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad integer {token!r}", line) from exc


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


class _Assembler:
    def __init__(self, text_base: int, data_base: int) -> None:
        if text_base % 4 or data_base % 4:
            raise AssemblerError("section bases must be word aligned")
        self.text_base = text_base
        self.data_base = data_base
        self.symbols: Dict[str, int] = {}
        self.items: List[_Item] = []

    # -- pass 1 ------------------------------------------------------------
    def scan(self, source: str) -> None:
        counters = {"text": self.text_base, "data": self.data_base}
        section = "text"
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _COMMENT_RE.sub("", raw).strip()
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in self.symbols:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                self.symbols[label] = counters[section]
                line = line[match.end():].strip()
            if not line:
                continue
            if line.startswith("."):
                section, size = self._scan_directive(
                    line, lineno, section, counters[section]
                )
                if size:
                    counters[section] += size
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _split_operands(parts[1]) if len(parts) > 1 else []
            size = self._instruction_size(mnemonic, lineno)
            self.items.append(
                _Item(lineno, section, counters[section], mnemonic,
                      operands, size)
            )
            counters[section] += 4 * size

    def _scan_directive(
        self, line: str, lineno: int, section: str, address: int
    ) -> Tuple[str, int]:
        parts = line.split(None, 1)
        directive = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if directive == ".text":
            return "text", 0
        if directive == ".data":
            return "data", 0
        if directive == ".word":
            values = _split_operands(rest)
            if not values:
                raise AssemblerError(".word needs at least one value", lineno)
            self.items.append(
                _Item(lineno, section, address, ".word", values, len(values))
            )
            return section, 4 * len(values)
        if directive == ".space":
            nbytes = _parse_int(rest, lineno)
            if nbytes < 0 or nbytes % 4:
                raise AssemblerError(
                    ".space size must be a non-negative multiple of 4", lineno
                )
            self.items.append(
                _Item(lineno, section, address, ".space", [rest], nbytes // 4)
            )
            return section, nbytes
        raise AssemblerError(f"unknown directive {directive!r}", lineno)

    def _instruction_size(self, mnemonic: str, lineno: int) -> int:
        if mnemonic in _PSEUDO_SIZES:
            return _PSEUDO_SIZES[mnemonic]
        try:
            Op[mnemonic.upper()]
        except KeyError as exc:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno) from exc
        return 1

    # -- pass 2 -------------------------------------------------------
    def emit(self) -> AssembledProgram:
        text: List[int] = []
        data: List[int] = []
        for item in self.items:
            try:
                words = self._emit_item(item)
            except AssemblerError:
                raise
            except Exception as exc:
                # bad registers / oversized immediates surface from the
                # encoder as EncodingError and friends; the assembler's
                # contract is that malformed source always raises
                # AssemblerError with the offending line
                raise AssemblerError(str(exc), item.line) from exc
            target = text if item.section == "text" else data
            base = self.text_base if item.section == "text" else self.data_base
            index = (item.address - base) // 4
            if index != len(target):
                raise AssemblerError(
                    f"internal: section misalignment at line {item.line}"
                )
            target.extend(words)
        return AssembledProgram(
            text=text,
            data=data,
            text_base=self.text_base,
            data_base=self.data_base,
            symbols=dict(self.symbols),
        )

    def _emit_item(self, item: _Item) -> List[int]:
        if item.mnemonic == ".word":
            return [
                bits.to_unsigned(self._value(tok, item.line))
                for tok in item.operands
            ]
        if item.mnemonic == ".space":
            return [0] * item.size_words
        if item.mnemonic in _PSEUDO_SIZES:
            return self._emit_pseudo(item)
        return [self._emit_native(item, item.mnemonic, item.operands)]

    def _value(self, token: str, line: int) -> int:
        """An integer literal or a label address."""
        token = token.strip()
        if token in self.symbols:
            return self.symbols[token]
        return _parse_int(token, line)

    def _branch_offset(self, item: _Item, token: str, pc: int) -> int:
        target = self._value(token, item.line)
        delta = target - (pc + 4)
        if delta % 4:
            raise AssemblerError("branch target misaligned", item.line)
        return delta // 4

    # -- pseudo expansion --------------------------------------------------
    def _emit_pseudo(self, item: _Item) -> List[int]:
        name, ops, line = item.mnemonic, item.operands, item.line

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{name} expects {count} operand(s), got {len(ops)}", line
                )

        if name in ("li", "la"):
            need(2)
            rd = parse_register(ops[0])
            value = bits.to_unsigned(self._value(ops[1], line))
            hi = (value >> 16) & 0xFFFF
            lo = value & 0xFFFF
            return [
                encode(Instruction(Op.LUI, rd=rd, imm=hi)),
                encode(Instruction(Op.ORI, rd=rd, rs1=rd, imm=lo)),
            ]
        if name == "nop":
            need(0)
            return [encode(Instruction(Op.ADDI, rd=0, rs1=0, imm=0))]
        if name == "mv":
            need(2)
            return [encode(Instruction(
                Op.ADDI, rd=parse_register(ops[0]),
                rs1=parse_register(ops[1]), imm=0))]
        if name == "neg":
            need(2)
            return [encode(Instruction(
                Op.SUB, rd=parse_register(ops[0]), rs1=0,
                rs2=parse_register(ops[1])))]
        if name == "not":
            need(2)
            return [encode(Instruction(
                Op.XORI, rd=parse_register(ops[0]),
                rs1=parse_register(ops[1]), imm=0xFFFF))]
        if name == "j":
            need(1)
            offset = self._branch_offset(item, ops[0], item.address)
            return [encode(Instruction(Op.JAL, rd=0, imm=offset))]
        if name == "call":
            need(1)
            offset = self._branch_offset(item, ops[0], item.address)
            return [encode(Instruction(Op.JAL, rd=31, imm=offset))]
        if name == "ret":
            need(0)
            return [encode(Instruction(Op.JALR, rd=0, rs1=31, imm=0))]
        if name in ("ble", "bgt"):
            need(3)
            rs1 = parse_register(ops[0])
            rs2 = parse_register(ops[1])
            offset = self._branch_offset(item, ops[2], item.address)
            op = Op.BGE if name == "ble" else Op.BLT
            # a <= b  <=>  b >= a ; a > b  <=>  b < a
            return [encode(Instruction(op, rs1=rs2, rs2=rs1, imm=offset))]
        if name in ("beqz", "bnez"):
            need(2)
            rs1 = parse_register(ops[0])
            offset = self._branch_offset(item, ops[1], item.address)
            op = Op.BEQ if name == "beqz" else Op.BNE
            return [encode(Instruction(op, rs1=rs1, rs2=0, imm=offset))]
        raise AssemblerError(f"unhandled pseudo {name!r}", line)  # pragma: no cover

    # -- native encoding ------------------------------------------------
    def _emit_native(self, item: _Item, name: str, ops: List[str]) -> int:
        line = item.line
        op = Op[name.upper()]
        fmt = Instruction(op).format

        def need(count: int) -> None:
            if len(ops) != count:
                raise AssemblerError(
                    f"{name} expects {count} operand(s), got {len(ops)}", line
                )

        try:
            if fmt is Format.NONE:
                need(0)
                return encode(Instruction(op))
            if fmt is Format.R:
                need(3)
                return encode(Instruction(
                    op, rd=parse_register(ops[0]),
                    rs1=parse_register(ops[1]),
                    rs2=parse_register(ops[2])))
            if fmt is Format.I:
                need(3)
                return encode(Instruction(
                    op, rd=parse_register(ops[0]),
                    rs1=parse_register(ops[1]),
                    imm=self._value(ops[2], line)))
            if fmt is Format.LUI:
                need(2)
                return encode(Instruction(
                    op, rd=parse_register(ops[0]),
                    imm=self._value(ops[1], line)))
            if fmt in (Format.LOAD, Format.STORE):
                need(2)
                match = _MEM_OPERAND_RE.match(ops[1].replace(" ", ""))
                if not match:
                    raise AssemblerError(
                        f"bad memory operand {ops[1]!r}", line)
                imm = self._value(match.group(1), line)
                base = parse_register(match.group(2))
                return encode(Instruction(
                    op, rd=parse_register(ops[0]), rs1=base, imm=imm))
            if fmt is Format.BRANCH:
                need(3)
                return encode(Instruction(
                    op, rs1=parse_register(ops[0]),
                    rs2=parse_register(ops[1]),
                    imm=self._branch_offset(item, ops[2], item.address)))
            if fmt is Format.JAL:
                need(2)
                return encode(Instruction(
                    op, rd=parse_register(ops[0]),
                    imm=self._branch_offset(item, ops[1], item.address)))
            if fmt is Format.JALR:
                need(3)
                return encode(Instruction(
                    op, rd=parse_register(ops[0]),
                    rs1=parse_register(ops[1]),
                    imm=self._value(ops[2], line)))
        except AssemblerError:
            raise
        except Exception as exc:
            raise AssemblerError(str(exc), line) from exc
        raise AssemblerError(f"unhandled format {fmt}", line)  # pragma: no cover


def assemble(
    source: str,
    text_base: int = 0x0000_0000,
    data_base: Optional[int] = None,
) -> AssembledProgram:
    """Assemble ``source``; see module docstring for the syntax.

    ``data_base`` defaults to the first word-aligned address after a
    64 KiB text window.
    """
    if data_base is None:
        data_base = text_base + 0x1_0000
    worker = _Assembler(text_base, data_base)
    worker.scan(source)
    return worker.emit()
