"""Disassembler for the GPP ISA.

Renders instruction words back into the assembler's input syntax;
``disassemble_program`` annotates addresses and resolves branch
targets to labels, producing listings that re-assemble to the same
words (pinned by a property test).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .isa import Format, Instruction, Op, decode


def _reg(index: int) -> str:
    return f"r{index}"


def disassemble_word(word: int, pc: int = 0) -> str:
    """One instruction word -> assembly text (numeric branch targets)."""
    instr = decode(word)
    op = instr.op
    name = op.name.lower()
    fmt = instr.format
    if fmt is Format.NONE:
        return name
    if fmt is Format.R:
        return f"{name} {_reg(instr.rd)}, {_reg(instr.rs1)}, {_reg(instr.rs2)}"
    if fmt is Format.I:
        return f"{name} {_reg(instr.rd)}, {_reg(instr.rs1)}, {instr.imm}"
    if fmt is Format.LUI:
        return f"{name} {_reg(instr.rd)}, {instr.imm}"
    if fmt in (Format.LOAD, Format.STORE):
        return f"{name} {_reg(instr.rd)}, {instr.imm}({_reg(instr.rs1)})"
    if fmt is Format.BRANCH:
        target = pc + 4 + 4 * instr.imm
        return f"{name} {_reg(instr.rs1)}, {_reg(instr.rs2)}, {target:#x}"
    if fmt is Format.JAL:
        target = pc + 4 + 4 * instr.imm
        return f"{name} {_reg(instr.rd)}, {target:#x}"
    if fmt is Format.JALR:
        return f"{name} {_reg(instr.rd)}, {_reg(instr.rs1)}, {instr.imm}"
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble_program(
    words: Sequence[int], base: int = 0
) -> str:
    """Full listing with addresses and synthesized branch labels."""
    # first pass: collect branch/jump targets
    targets: Dict[int, str] = {}
    for index, word in enumerate(words):
        instr = decode(word)
        if instr.format in (Format.BRANCH, Format.JAL):
            address = base + 4 * index + 4 + 4 * instr.imm
            targets.setdefault(address, f"L{len(targets)}")

    lines: List[str] = []
    for index, word in enumerate(words):
        address = base + 4 * index
        if address in targets:
            lines.append(f"{targets[address]}:")
        instr = decode(word)
        if instr.format in (Format.BRANCH, Format.JAL):
            target = address + 4 + 4 * instr.imm
            label = targets.get(target, f"{target:#x}")
            if instr.format is Format.BRANCH:
                text = (f"{instr.op.name.lower()} {_reg(instr.rs1)}, "
                        f"{_reg(instr.rs2)}, {label}")
            else:
                text = f"{instr.op.name.lower()} {_reg(instr.rd)}, {label}"
        else:
            text = disassemble_word(word, pc=address)
        lines.append(f"    {text:<36} # {address:#010x}: {word:#010x}")
    return "\n".join(lines)
