"""Instruction set of the GPP instruction-set simulator.

The paper's SoC is built around a Leon3 (SPARC V8) soft core.  For the
reproduction we need a *calibrated in-order scalar core*, not SPARC
compatibility, so the ISS implements a small load/store RISC ISA that is
easy to hand-write kernels for:

* 32 general registers ``r0..r31`` with ``r0`` hard-wired to zero
  (``ra`` = ``r31`` is the link register, ``sp`` = ``r30`` by
  convention),
* 32-bit fixed-width instructions,
* ALU register and immediate forms, ``lui``, ``lw``/``sw``,
  six conditional branches, ``jal``/``jalr``, ``wfi`` and ``halt``.

Encodings (opcode always in bits [31:26]):

======== ==========================================
R-type   ``op | rd(5) | rs1(5) | rs2(5) | 0(11)``
I-type   ``op | rd(5) | rs1(5) | imm16``
store    ``op | rv(5) | rs1(5) | imm16``
branch   ``op | rs1(5) | rs2(5) | imm16`` (word offset from pc+4)
jal      ``op | rd(5) | imm21``          (word offset from pc+4)
======== ==========================================

All 16-bit immediates are sign-extended (including the logical ops --
documented divergence from MIPS, chosen for uniformity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sim.errors import EncodingError
from ..utils import bits

N_REGS = 32

#: conventional register aliases accepted by the assembler
REG_ALIASES: Dict[str, int] = {
    "zero": 0,
    "sp": 30,
    "ra": 31,
}


class Format(enum.Enum):
    """Operand layout of an instruction."""

    R = "r"          # rd, rs1, rs2
    I = "i"          # rd, rs1, imm
    LUI = "lui"      # rd, imm
    LOAD = "load"    # rd, imm(rs1)
    STORE = "store"  # rv, imm(rs1)
    BRANCH = "b"     # rs1, rs2, target
    JAL = "jal"      # rd, target
    JALR = "jalr"    # rd, rs1, imm
    NONE = "none"    # no operands


class Op(enum.IntEnum):
    """Opcode numbers (6-bit space)."""

    HALT = 0x00
    ADD = 0x01
    SUB = 0x02
    AND = 0x03
    OR = 0x04
    XOR = 0x05
    SLL = 0x06
    SRL = 0x07
    SRA = 0x08
    SLT = 0x09
    SLTU = 0x0A
    MUL = 0x0B
    DIV = 0x0C
    REM = 0x0D
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SLLI = 0x14
    SRLI = 0x15
    SRAI = 0x16
    SLTI = 0x17
    LUI = 0x18
    LW = 0x20
    SW = 0x21
    BEQ = 0x28
    BNE = 0x29
    BLT = 0x2A
    BGE = 0x2B
    BLTU = 0x2C
    BGEU = 0x2D
    JAL = 0x30
    JALR = 0x31
    WFI = 0x38


#: format of each opcode
OP_FORMAT: Dict[Op, Format] = {
    Op.HALT: Format.NONE,
    Op.ADD: Format.R,
    Op.SUB: Format.R,
    Op.AND: Format.R,
    Op.OR: Format.R,
    Op.XOR: Format.R,
    Op.SLL: Format.R,
    Op.SRL: Format.R,
    Op.SRA: Format.R,
    Op.SLT: Format.R,
    Op.SLTU: Format.R,
    Op.MUL: Format.R,
    Op.DIV: Format.R,
    Op.REM: Format.R,
    Op.ADDI: Format.I,
    Op.ANDI: Format.I,
    Op.ORI: Format.I,
    Op.XORI: Format.I,
    Op.SLLI: Format.I,
    Op.SRLI: Format.I,
    Op.SRAI: Format.I,
    Op.SLTI: Format.I,
    Op.LUI: Format.LUI,
    Op.LW: Format.LOAD,
    Op.SW: Format.STORE,
    Op.BEQ: Format.BRANCH,
    Op.BNE: Format.BRANCH,
    Op.BLT: Format.BRANCH,
    Op.BGE: Format.BRANCH,
    Op.BLTU: Format.BRANCH,
    Op.BGEU: Format.BRANCH,
    Op.JAL: Format.JAL,
    Op.JALR: Format.JALR,
    Op.WFI: Format.NONE,
}

BRANCH_OPS = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}
ALU_R_OPS = {
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
    Op.SLT, Op.SLTU, Op.MUL, Op.DIV, Op.REM,
}
ALU_I_OPS = {
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI, Op.SLTI,
}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction.

    Field meaning depends on :attr:`op`'s format; unused fields are 0.
    ``imm`` is stored sign-extended (a plain Python int, possibly
    negative).
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def format(self) -> Format:
        return OP_FORMAT[self.op]


def op_zero_extends(op: Op) -> bool:
    """True for immediates stored zero-extended (logical ops, lui)."""
    return op in (Op.ANDI, Op.ORI, Op.XORI, Op.LUI)


def _check_reg(value: int, what: str) -> None:
    if not 0 <= value < N_REGS:
        raise EncodingError(f"{what} r{value} out of range")


def encode(instr: Instruction) -> int:
    """Encode a decoded instruction into its 32-bit word."""
    fmt = instr.format
    word = int(instr.op) << 26
    _check_reg(instr.rd, "rd")
    _check_reg(instr.rs1, "rs1")
    _check_reg(instr.rs2, "rs2")
    if fmt is Format.R:
        return word | (instr.rd << 21) | (instr.rs1 << 16) | (instr.rs2 << 11)
    if fmt in (Format.I, Format.LOAD, Format.JALR):
        # Logical immediates are zero-extended (so `ori` can build the
        # low half of any 32-bit constant); the rest sign-extend.
        if op_zero_extends(instr.op):
            ok = bits.fits_unsigned(instr.imm, 16) or bits.fits_signed(instr.imm, 16)
        else:
            ok = bits.fits_signed(instr.imm, 16)
        if not ok:
            raise EncodingError(f"imm {instr.imm} does not fit 16 bits")
        return (
            word
            | (instr.rd << 21)
            | (instr.rs1 << 16)
            | bits.to_unsigned(instr.imm, 16)
        )
    if fmt is Format.LUI:
        if not (bits.fits_signed(instr.imm, 16) or bits.fits_unsigned(instr.imm, 16)):
            raise EncodingError(f"lui imm {instr.imm} does not fit 16 bits")
        return word | (instr.rd << 21) | bits.to_unsigned(instr.imm, 16)
    if fmt is Format.STORE:
        # store value register travels in the rd slot
        if not bits.fits_signed(instr.imm, 16):
            raise EncodingError(f"imm {instr.imm} does not fit 16 bits")
        return (
            word
            | (instr.rd << 21)
            | (instr.rs1 << 16)
            | bits.to_unsigned(instr.imm, 16)
        )
    if fmt is Format.BRANCH:
        if not bits.fits_signed(instr.imm, 16):
            raise EncodingError(f"branch offset {instr.imm} does not fit")
        return (
            word
            | (instr.rs1 << 21)
            | (instr.rs2 << 16)
            | bits.to_unsigned(instr.imm, 16)
        )
    if fmt is Format.JAL:
        if not bits.fits_signed(instr.imm, 21):
            raise EncodingError(f"jal offset {instr.imm} does not fit")
        return word | (instr.rd << 21) | bits.to_unsigned(instr.imm, 21)
    if fmt is Format.NONE:
        return word
    raise EncodingError(f"unhandled format {fmt}")  # pragma: no cover


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word.

    Raises
    ------
    EncodingError
        If the opcode field holds an undefined opcode.
    """
    opcode = (word >> 26) & 0x3F
    try:
        op = Op(opcode)
    except ValueError as exc:
        raise EncodingError(f"undefined opcode {opcode:#x}") from exc
    fmt = OP_FORMAT[op]
    if fmt is Format.R:
        return Instruction(
            op,
            rd=(word >> 21) & 0x1F,
            rs1=(word >> 16) & 0x1F,
            rs2=(word >> 11) & 0x1F,
        )
    if fmt in (Format.I, Format.LOAD, Format.JALR, Format.STORE):
        raw = word & 0xFFFF
        imm = raw if op_zero_extends(op) else bits.to_signed(raw, 16)
        return Instruction(
            op,
            rd=(word >> 21) & 0x1F,
            rs1=(word >> 16) & 0x1F,
            imm=imm,
        )
    if fmt is Format.LUI:
        return Instruction(
            op,
            rd=(word >> 21) & 0x1F,
            imm=word & 0xFFFF,
        )
    if fmt is Format.BRANCH:
        return Instruction(
            op,
            rs1=(word >> 21) & 0x1F,
            rs2=(word >> 16) & 0x1F,
            imm=bits.to_signed(word & 0xFFFF, 16),
        )
    if fmt is Format.JAL:
        return Instruction(
            op,
            rd=(word >> 21) & 0x1F,
            imm=bits.to_signed(word & 0x1FFFFF, 21),
        )
    return Instruction(op)


def parse_register(token: str) -> int:
    """Parse ``r7`` / ``ra`` / ``zero`` into a register number."""
    token = token.strip().lower()
    if token in REG_ALIASES:
        return REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        number = int(token[1:])
        if 0 <= number < N_REGS:
            return number
    raise EncodingError(f"bad register name {token!r}")


@dataclass(frozen=True)
class CostModel:
    """Per-instruction cycle costs (Leon3-like, warm caches).

    Leon3 executes most integer instructions in one cycle; loads hit the
    data cache in one cycle; the optional MAC makes ``mul``
    single-cycle; ``div`` is iterative (35 cycles in the GRLIB
    implementation).  These constants are what the in-text SW cycle
    numbers of the paper assume.
    """

    alu: int = 1
    load: int = 1
    store: int = 1
    mul: int = 1
    div: int = 35
    branch: int = 1
    jump: int = 1

    def cost(self, op: Op) -> int:
        if op is Op.MUL:
            return self.mul
        if op in (Op.DIV, Op.REM):
            return self.div
        if op is Op.LW:
            return self.load
        if op is Op.SW:
            return self.store
        if op in BRANCH_OPS:
            return self.branch
        if op in (Op.JAL, Op.JALR):
            return self.jump
        return self.alu
