"""GPP substrate: RISC ISA, assembler, instruction-set simulator, kernels."""

from . import kernels
from .assembler import AssembledProgram, assemble
from .cpu import CPU
from .isa import (
    CostModel,
    Format,
    Instruction,
    Op,
    decode,
    encode,
    parse_register,
)

__all__ = [
    "AssembledProgram",
    "CPU",
    "CostModel",
    "Format",
    "Instruction",
    "Op",
    "assemble",
    "decode",
    "encode",
    "kernels",
    "parse_register",
]
