"""Hand-written assembly kernels for the GPP ISS.

These are the "time-optimized software versions" of Table I: the 2-D
IDCT and the DFT, written directly in the ISS assembly language the way
one would write them for a Leon3 without an FPU (fixed-point, unrolled
inner loops, pointer arithmetic instead of index math).

Each ``*_source`` function returns assembly text with well-known data
labels; callers locate the arrays through
:meth:`~repro.cpu.assembler.AssembledProgram.address_of` and poke/peek
memory directly (the role the test harness on the real board plays).

Arithmetic conventions match :mod:`repro.utils.fixedpoint`:

* IDCT: Q(2.13) coefficient matrix, round-half-up at each 1-D pass,
  final saturation to 16 bits -- bit-exact against
  :func:`repro.utils.fixedpoint.idct2_q15`.
* direct DFT: Q15 twiddles, per-term product pre-shift by 8 to keep the
  32-bit accumulators safe, final shift by ``15 + log2(n) - 8``
  (within a couple of LSB of :func:`direct_dft_q15`).
* radix-2 FFT: bit-exact against :func:`repro.utils.fixedpoint.fft_q15`
  (same rounding, same per-stage scaling).
"""

from __future__ import annotations

from typing import List

from ..sim.errors import ConfigurationError
from ..utils import bits as bitutils
from ..utils.fixedpoint import (
    IDCT_COEF_BITS,
    IDCT_SIZE,
    idct_coefficient_matrix,
    twiddle_table_q15,
)


def _words_directive(values: List[int], per_line: int = 8) -> str:
    lines = []
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append("    .word " + ", ".join(str(v) for v in chunk))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# 2-D IDCT
# ---------------------------------------------------------------------------

def _idct_pass(
    label: str,
    in_label_reg: str,
    out_reg: str,
    tap_in_stride: int,
    outer_in_stride: int,
    inner_in_stride: int,
    saturate: bool,
) -> str:
    """Emit one 1-D pass over all 64 elements (8 outer x 8 inner).

    Outer loop walks ``r10`` (input base) by ``outer_in_stride`` and the
    coefficient-matrix row pointer by 32; the inner loop walks ``r10``'s
    tap base by ``inner_in_stride``.  Taps are fully unrolled with
    explicit offsets ``tap_in_stride * k``.
    """
    taps = []
    for k in range(IDCT_SIZE):
        off_m = 4 * k
        off_x = tap_in_stride * k
        taps.append(f"    lw   r20, {off_m}(r12)")
        taps.append(f"    lw   r21, {off_x}(r13)")
        taps.append(f"    mul  r23, r20, r21")
        if k == 0:
            taps.append("    mv   r22, r23")
        else:
            taps.append("    add  r22, r22, r23")
    tap_block = "\n".join(taps)
    rounding = 1 << (IDCT_COEF_BITS - 1)
    saturation = ""
    if saturate:
        saturation = f"""\
    ble  r22, r28, {label}_nohi
    mv   r22, r28
{label}_nohi:
    bge  r22, r29, {label}_nolo
    mv   r22, r29
{label}_nolo:
"""
    return f"""\
    li   r5, 8              # outer counter
    mv   r10, {in_label_reg}   # input walker
    mv   r11, {out_reg}        # output walker
{label}_outer:
    li   r6, 8              # inner counter
    mv   r12, r3            # coefficient matrix row pointer
    mv   r13, r10           # tap base for this output
{label}_inner:
{tap_block}
    addi r22, r22, {rounding}
    srai r22, r22, {IDCT_COEF_BITS}
{saturation}    sw   r22, 0(r11)
    addi r11, r11, 4
    addi r12, r12, 32       # next matrix row
    addi r13, r13, {inner_in_stride}
    addi r6, r6, -1
    bne  r6, r0, {label}_inner
    addi r10, r10, {outer_in_stride}
    addi r5, r5, -1
    bne  r5, r0, {label}_outer
"""


def idct_sw_source() -> str:
    """Assembly for the software 2-D 8x8 IDCT (Table I, IDCT/SW row).

    Data labels: ``idct_in`` (64 coefficient words), ``idct_out``
    (64 sample words); ``idct_mat`` and ``idct_tmp`` are internal.

    Pass 1 computes, for every row ``r`` and output index ``n``::

        tmp[r][n] = round(sum_k M[n][k] * in[r][k] >> 13)

    row-major; pass 2 then walks the columns of ``tmp`` against the
    matrix rows and produces the final block in row-major order with
    16-bit saturation.  Bit-exact against ``fixedpoint.idct2_q15``.
    """
    matrix = idct_coefficient_matrix()
    flat_matrix = [matrix[n][k] for n in range(8) for k in range(8)]
    pass1 = _idct_pass(
        "p1",
        in_label_reg="r1",
        out_reg="r4",
        tap_in_stride=4,
        outer_in_stride=32,
        inner_in_stride=0,
        saturate=False,
    )
    # Pass 2 computes out[r][c] = sum_k M[r][k]*tmp[k][c]: the matrix
    # row advances with the *outer* loop, so it needs its own body.
    pass2 = _idct_pass2_body()
    return f"""\
# 2-D 8x8 IDCT, fixed point Q(2.13), row pass then column pass.
.text
    la   r1, idct_in
    la   r2, idct_out
    la   r3, idct_mat
    la   r4, idct_tmp
    li   r28, 32767
    li   r29, -32768
{pass1}
{pass2}
    halt
.data
idct_in:
    .space 256
idct_tmp:
    .space 256
idct_out:
    .space 256
idct_mat:
{_words_directive(flat_matrix)}
"""


def _idct_pass2_body() -> str:
    """Column pass: ``out[r][c] = sat(round(sum_k M[r][k]*tmp[k][c]))``.

    Outer loop over ``r`` advances the matrix row pointer by 32 and the
    output pointer stays sequential; the inner loop over ``c`` advances
    the tmp column base by 4.  Taps walk tmp with stride 32.
    """
    taps = []
    for k in range(IDCT_SIZE):
        off_m = 4 * k
        off_x = 32 * k
        taps.append(f"    lw   r20, {off_m}(r12)")
        taps.append(f"    lw   r21, {off_x}(r13)")
        taps.append(f"    mul  r23, r20, r21")
        if k == 0:
            taps.append("    mv   r22, r23")
        else:
            taps.append("    add  r22, r22, r23")
    tap_block = "\n".join(taps)
    rounding = 1 << (IDCT_COEF_BITS - 1)
    return f"""\
    li   r5, 8              # r counter
    mv   r12, r3            # matrix row pointer (row r)
    mv   r11, r2            # output walker (row major)
p2_outer:
    li   r6, 8              # c counter
    mv   r13, r4            # tmp column base
p2_inner:
{tap_block}
    addi r22, r22, {rounding}
    srai r22, r22, {IDCT_COEF_BITS}
    ble  r22, r28, p2_nohi
    mv   r22, r28
p2_nohi:
    bge  r22, r29, p2_nolo
    mv   r22, r29
p2_nolo:
    sw   r22, 0(r11)
    addi r11, r11, 4
    addi r13, r13, 4        # next column
    addi r6, r6, -1
    bne  r6, r0, p2_inner
    addi r12, r12, 32       # next matrix row
    addi r5, r5, -1
    bne  r5, r0, p2_outer
"""


# ---------------------------------------------------------------------------
# direct DFT (the paper's SW baseline scale)
# ---------------------------------------------------------------------------

def dft_sw_source(n: int) -> str:
    """Assembly for the direct O(N^2) Q15 DFT.

    Data labels: ``xr``/``xi`` (inputs, n words each), ``yr``/``yi``
    (outputs), ``cos_t``/``sin_t`` (twiddle ROMs, embedded).

    Products are pre-shifted by 8 before accumulation so a 32-bit
    accumulator survives N <= 1024 terms; the final shift of
    ``15 + log2(n) - 8`` realizes the 1/N-scaled DFT.
    """
    if not bitutils.is_power_of_two(n) or n < 2:
        raise ConfigurationError(f"DFT size must be a power of two >= 2, got {n}")
    if n > 1024:
        raise ConfigurationError("direct DFT kernel supports n <= 1024")
    log2n = bitutils.log2_exact(n)
    final_shift = 15 + log2n - 8
    cos_t, sin_t = twiddle_table_q15(n)
    return f"""\
# Direct {n}-point complex DFT, Q15, output scaled by 1/N.
.text
    la   r1, xr
    la   r2, xi
    la   r3, cos_t
    la   r4, sin_t
    la   r5, yr
    la   r6, yi
    li   r7, {n}
    li   r23, {n - 1}
    mv   r8, r0             # k = 0
k_loop:
    mv   r20, r0            # acc_r
    mv   r21, r0            # acc_i
    mv   r9, r0             # twiddle index
    mv   r10, r1            # xr walker
    mv   r11, r2            # xi walker
    mv   r12, r7            # t counter
t_loop:
    slli r13, r9, 2
    add  r14, r3, r13
    lw   r15, 0(r14)        # wr = cos[idx]
    add  r14, r4, r13
    lw   r16, 0(r14)        # wi = -sin[idx]
    lw   r17, 0(r10)        # x_re
    lw   r18, 0(r11)        # x_im
    mul  r19, r17, r15
    mul  r22, r18, r16
    sub  r19, r19, r22      # re*wr - im*wi
    srai r19, r19, 8
    add  r20, r20, r19
    mul  r19, r17, r16
    mul  r22, r18, r15
    add  r19, r19, r22      # re*wi + im*wr
    srai r19, r19, 8
    add  r21, r21, r19
    addi r10, r10, 4
    addi r11, r11, 4
    add  r9, r9, r8         # idx += k
    and  r9, r9, r23        # idx mod n
    addi r12, r12, -1
    bne  r12, r0, t_loop
    srai r20, r20, {final_shift}
    srai r21, r21, {final_shift}
    slli r13, r8, 2
    add  r14, r5, r13
    sw   r20, 0(r14)
    add  r14, r6, r13
    sw   r21, 0(r14)
    addi r8, r8, 1
    bne  r8, r7, k_loop
    halt
.data
xr:
    .space {4 * n}
xi:
    .space {4 * n}
yr:
    .space {4 * n}
yi:
    .space {4 * n}
cos_t:
{_words_directive(cos_t)}
sin_t:
{_words_directive(sin_t)}
"""


# ---------------------------------------------------------------------------
# radix-2 FFT (ablation: even against FFT software, hardware wins)
# ---------------------------------------------------------------------------

def fft_sw_source(n: int) -> str:
    """Assembly for the in-place radix-2 DIT FFT, bit-exact vs ``fft_q15``.

    Data labels: ``xr``/``xi`` (in-place input/output, n words each);
    twiddle ROMs embedded as ``cos_t``/``sin_t``.
    """
    if not bitutils.is_power_of_two(n) or n < 2:
        raise ConfigurationError(f"FFT size must be a power of two >= 2, got {n}")
    log2n = bitutils.log2_exact(n)
    cos_t, sin_t = twiddle_table_q15(n)
    return f"""\
# In-place radix-2 DIT FFT, {n} points, Q15, 1/N scaling.
.text
    la   r1, xr
    la   r2, xi
    la   r3, cos_t
    la   r4, sin_t
    li   r7, {n}
# ---- bit-reversal permutation ----
    mv   r8, r0             # i
br_loop:
    mv   r9, r0             # j
    mv   r10, r8
    li   r11, {log2n}
br_inner:
    slli r9, r9, 1
    andi r12, r10, 1
    or   r9, r9, r12
    srli r10, r10, 1
    addi r11, r11, -1
    bne  r11, r0, br_inner
    ble  r9, r8, br_skip
    slli r12, r8, 2
    slli r13, r9, 2
    add  r14, r1, r12
    add  r15, r1, r13
    lw   r16, 0(r14)
    lw   r17, 0(r15)
    sw   r17, 0(r14)
    sw   r16, 0(r15)
    add  r14, r2, r12
    add  r15, r2, r13
    lw   r16, 0(r14)
    lw   r17, 0(r15)
    sw   r17, 0(r14)
    sw   r16, 0(r15)
br_skip:
    addi r8, r8, 1
    bne  r8, r7, br_loop
# ---- butterfly stages ----
    li   r24, 1             # span
    srli r25, r7, 1         # twiddle stride = n / (2*span)
stage_loop:
    mv   r8, r0             # group start
group_loop:
    mv   r9, r0             # k
    mv   r26, r0            # twiddle index
bf_loop:
    add  r10, r8, r9        # a index
    add  r11, r10, r24      # b index
    slli r12, r10, 2
    slli r13, r11, 2
    slli r14, r26, 2
    add  r15, r3, r14
    lw   r16, 0(r15)        # wr
    add  r15, r4, r14
    lw   r17, 0(r15)        # wi
    add  r15, r1, r13
    lw   r18, 0(r15)        # br
    add  r15, r2, r13
    lw   r19, 0(r15)        # bi
    mul  r20, r18, r16
    addi r20, r20, 16384
    srai r20, r20, 15
    mul  r21, r19, r17
    addi r21, r21, 16384
    srai r21, r21, 15
    sub  r20, r20, r21      # tr
    mul  r21, r18, r17
    addi r21, r21, 16384
    srai r21, r21, 15
    mul  r22, r19, r16
    addi r22, r22, 16384
    srai r22, r22, 15
    add  r21, r21, r22      # ti
    add  r15, r1, r12
    lw   r18, 0(r15)        # ar
    add  r15, r2, r12
    lw   r19, 0(r15)        # ai
    add  r22, r18, r20
    srai r22, r22, 1
    add  r15, r1, r12
    sw   r22, 0(r15)
    sub  r22, r18, r20
    srai r22, r22, 1
    add  r15, r1, r13
    sw   r22, 0(r15)
    add  r22, r19, r21
    srai r22, r22, 1
    add  r15, r2, r12
    sw   r22, 0(r15)
    sub  r22, r19, r21
    srai r22, r22, 1
    add  r15, r2, r13
    sw   r22, 0(r15)
    add  r26, r26, r25      # twiddle index += stride
    addi r9, r9, 1
    bne  r9, r24, bf_loop
    slli r12, r24, 1
    add  r8, r8, r12        # start += 2*span
    blt  r8, r7, group_loop
    slli r24, r24, 1        # span *= 2
    srli r25, r25, 1        # stride /= 2
    blt  r24, r7, stage_loop
    halt
.data
xr:
    .space {4 * n}
xi:
    .space {4 * n}
cos_t:
{_words_directive(cos_t)}
sin_t:
{_words_directive(sin_t)}
"""


# ---------------------------------------------------------------------------
# generic helpers
# ---------------------------------------------------------------------------

def memcpy_source(n_words: int) -> str:
    """Word-by-word copy loop: the PIO transfer cost of a naive driver.

    Data labels: ``src`` and ``dst`` (``n_words`` each).
    """
    if n_words < 1:
        raise ConfigurationError("memcpy needs at least one word")
    return f"""\
.text
    la   r1, src
    la   r2, dst
    li   r3, {n_words}
copy_loop:
    lw   r4, 0(r1)
    sw   r4, 0(r2)
    addi r1, r1, 4
    addi r2, r2, 4
    addi r3, r3, -1
    bne  r3, r0, copy_loop
    halt
.data
src:
    .space {4 * n_words}
dst:
    .space {4 * n_words}
"""
