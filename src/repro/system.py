"""SoC top-level builder.

Assembles the platform the paper evaluates on: a CPU (Leon3 stand-in),
SRAM main memory, a system bus (AMBA2 AHB by default) and one or more
Ouessant coprocessors -- plus the interrupt controller tying OCP IRQ
lines back to the CPU.

The default memory map mirrors a typical Leon3/GRLIB layout:

=============== ============ =======================
``0x4000_0000``  RAM          16 MB SRAM (Nexys4)
``0x8000_0000``  OCP #0       first coprocessor
``0x8000_0040``  OCP #1 ...   further coprocessors
``0x8001_0000``  DMA          optional DMA peripheral
``0x8002_0000``  TIMER        free-running cycle counter
=============== ============ =======================
"""

from __future__ import annotations

from typing import List, Optional

from .bus.bus import SystemBus
from .bus.irq import IRQController
from .bus.protocol import AHB, BusProtocol
from .bus.types import BusSlave
from .core.coprocessor import OuessantCoprocessor
from .cpu.cpu import CPU
from .cpu.isa import CostModel
from .mem.dma import DMAEngine
from .mem.memory import Memory
from .rac.base import RAC
from .sim.kernel import Simulator
from .sim.tracing import Trace

RAM_BASE = 0x4000_0000
RAM_SIZE = 16 << 20
OCP_BASE = 0x8000_0000
DMA_BASE = 0x8001_0000
TIMER_BASE = 0x8002_0000


class CycleTimer(BusSlave):
    """Free-running cycle counter readable over the bus.

    Models the timer unit software uses for the paper's "time markers
    in the software code".
    """

    access_latency = 0

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    def read_word(self, offset: int) -> int:
        return self._sim.cycle & 0xFFFFFFFF

    def write_word(self, offset: int, value: int) -> None:
        """Writes are ignored (the counter is free running)."""


class SoC:
    """A complete simulated system.

    Parameters
    ----------
    racs:
        Accelerators; one OCP is built per RAC.
    protocol:
        Bus protocol timing model (AHB, as in the paper, by default).
    prefetch:
        Microcode prefetch policy applied to every OCP controller.
    with_dma / with_cpu:
        Optional peripherals (baselines need the DMA engine; pure
        OCP-driven runs can skip the CPU entirely).
    clock_mhz:
        The system clock the design must close at (the paper uses
        50 MHz); consumed by the system linter's timing check.
    strict:
        Enables the kernel's idle-skip audits *and* runs the
        system-level integrity analyzer (:mod:`repro.soclint`) after
        elaboration, raising :class:`ConfigurationError` on any
        error-severity finding.
    vectorized:
        Enables the kernel's dispatch-table fast path (default; see
        ``docs/SIMULATION.md``).  Automatically disabled by strict
        mode, armed fault injectors and waveform probes.
    """

    def __init__(
        self,
        racs: Optional[List[RAC]] = None,
        protocol: BusProtocol = AHB,
        prefetch: bool = True,
        with_cpu: bool = True,
        with_dma: bool = False,
        ram_size: int = RAM_SIZE,
        cost_model: Optional[CostModel] = None,
        trace: Optional[Trace] = None,
        memory: Optional[Memory] = None,
        idle_skip: bool = True,
        strict: bool = False,
        profile_time: bool = False,
        vectorized: bool = True,
        clock_mhz: float = 50.0,
    ) -> None:
        self.sim = Simulator(
            trace=trace,
            idle_skip=idle_skip,
            strict=strict,
            profile_time=profile_time,
            vectorized=vectorized,
        )
        self.bus = SystemBus("bus", protocol=protocol)
        self.sim.add(self.bus)
        # main memory is injectable (e.g. an SDRAM open-row model)
        self.memory = memory or Memory("ram", ram_size, access_latency=1)
        self.bus.attach_slave(
            "ram", RAM_BASE, self.memory.size_bytes, self.memory
        )
        self.irqc = IRQController()
        self.timer = CycleTimer(self.sim)
        self.bus.attach_slave("timer", TIMER_BASE, 64, self.timer)

        self.cpu: Optional[CPU] = None
        if with_cpu:
            self.cpu = CPU(
                "cpu",
                memory=self.memory,
                memory_base=RAM_BASE,
                bus=self.bus,
                irq=self.irqc,
                cost_model=cost_model,
            )
            self.sim.add(self.cpu)

        self.dma: Optional[DMAEngine] = None
        if with_dma:
            self.dma = DMAEngine("dma", bus=self.bus)
            self.bus.attach_slave("dma", DMA_BASE, 64, self.dma)
            self.sim.add(self.dma)
            self.irqc.register(self.dma.irq)

        self._prefetch = prefetch
        self.clock_mhz = clock_mhz
        self.strict = strict
        self.ocps: List[OuessantCoprocessor] = []
        self._elaborated = False
        for index, rac in enumerate(racs or []):
            self.add_ocp(rac, index)
        self._elaborated = True
        if strict:
            self.check_integrity()

    # -- construction -----------------------------------------------------
    def add_ocp(self, rac: RAC, index: Optional[int] = None, **kwargs) -> OuessantCoprocessor:
        """Build an OCP around ``rac`` and map it on the bus."""
        if index is None:
            index = len(self.ocps)
        name = f"ocp{index}" if index else "ocp"
        kwargs.setdefault("prefetch", self._prefetch)
        ocp = OuessantCoprocessor(rac, name=name, bus=self.bus, **kwargs)
        base = OCP_BASE + index * OuessantCoprocessor.WINDOW_BYTES
        ocp.attach(self.sim, self.bus, base)
        self.irqc.register(ocp.irq)
        self.ocps.append(ocp)
        if self.strict and self._elaborated:
            self.check_integrity()
        return ocp

    # -- static analysis ---------------------------------------------------
    def lint(self, **kwargs):
        """Run the system-level integrity analyzer over this SoC.

        Keyword arguments are forwarded to
        :func:`repro.soclint.lint_soc` (``banks``, ``firmware``,
        ``clock_mhz``, ``suppress``, ...).  Returns a
        :class:`~repro.verify.diagnostics.VerifyReport`.
        """
        from .soclint import lint_soc

        return lint_soc(self, **kwargs)

    def check_integrity(self) -> None:
        """Lint the elaborated system; raise on any error finding."""
        from .sim.errors import ConfigurationError

        report = self.lint()
        if not report.clean:
            raise ConfigurationError(
                "SoC failed elaboration-time integrity analysis:\n"
                + report.render()
            )

    @property
    def ocp(self) -> OuessantCoprocessor:
        """The first (usually only) coprocessor."""
        if not self.ocps:
            raise LookupError("this SoC has no OCP")
        return self.ocps[0]

    def ocp_base(self, index: int = 0) -> int:
        return OCP_BASE + index * OuessantCoprocessor.WINDOW_BYTES

    # -- memory helpers (backdoor, zero simulated time) ----------------------
    def write_ram(self, address: int, words: List[int]) -> None:
        self.memory.load_words(address - RAM_BASE, words)

    def read_ram(self, address: int, count: int) -> List[int]:
        return self.memory.dump_words(address - RAM_BASE, count)

    # -- execution -----------------------------------------------------------
    def run_until(self, predicate, max_cycles: int = 5_000_000, what: str = "condition") -> int:
        return self.sim.run_until(predicate, max_cycles=max_cycles, what=what)


# ---------------------------------------------------------------------------
# MPSoC elaboration helpers
# ---------------------------------------------------------------------------

def build_mpsoc(racs: List[RAC], ocp_kwargs=None, **soc_kwargs) -> SoC:
    """Elaborate an N-OCP SoC from a heterogeneous RAC list.

    Convenience over ``SoC(racs=...)`` for scale-out work:

    * component names are uniquified (two ``PassthroughRac()`` share
      the default name ``"loopback"``, which the kernel would reject);
    * ``ocp_kwargs`` (e.g. ``{"watchdog_cycles": 5000}``) are forwarded
      to *every* :meth:`SoC.add_ocp` call, which plain construction
      cannot express.
    """
    soc = SoC(racs=[], **soc_kwargs)
    seen: set = set()
    for index, rac in enumerate(racs):
        if rac.name in seen:
            rac.name = f"{rac.name}{index}"
        seen.add(rac.name)
        soc.add_ocp(rac, index, **(ocp_kwargs or {}))
    if soc.strict:
        soc.check_integrity()
    return soc


def plan_mpsoc_map(
    n_ocps: int,
    ocp_stride: int = OuessantCoprocessor.WINDOW_BYTES,
    ram_size: int = RAM_SIZE,
):
    """The planned memory map of an N-OCP SoC, for pre-elaboration lint.

    Returns ``(name, base, size)`` tuples for
    :func:`repro.soclint.lint_map_plan`.  A non-default ``ocp_stride``
    below the window size models a mis-planned layout (overlapping OCP
    windows) that the linter must catch before any slave exists.
    """
    plan = [
        ("ram", RAM_BASE, ram_size),
        ("timer", TIMER_BASE, 64),
    ]
    for index in range(n_ocps):
        name = f"ocp{index}" if index else "ocp"
        plan.append((
            name,
            OCP_BASE + index * ocp_stride,
            OuessantCoprocessor.WINDOW_BYTES,
        ))
    return plan
