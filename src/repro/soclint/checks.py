"""The individual system-level integrity checks (OU1xx).

Each check is a pure function appending findings to a
:class:`~repro.verify.diagnostics.VerifyReport`; the engine decides
which checks run for which inputs.  Severity discipline mirrors the
microcode verifier: *error* findings correspond to configurations that
demonstrably fail (raise at elaboration, trap, deadlock or miscompute
when simulated); hazards that may be benign are warnings.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..core.coprocessor import OuessantCoprocessor
from ..core.perf import PERF_WINDOW_BYTES
from ..synth.timing import Technology, timing_report
from ..verify.diagnostics import VerifyReport
from .model import (
    PlannedRegion,
    REGISTER_FILE_BYTES,
    SystemModel,
    is_memory_slave,
)

#: slack under this fraction of the clock period is flagged marginal
MARGINAL_SLACK_FRACTION = 0.05


# -- memory-map structure (OU10x) ---------------------------------------

def check_map_plan(
    plan: Sequence[PlannedRegion], report: VerifyReport
) -> None:
    """Overlap / alignment / shadowing over a (possibly broken) plan."""
    for region in plan:
        if region.size <= 0:
            report.add("OU101", None,
                       f"size {region.size:#x} is not positive",
                       where=f"region {region.name!r}")
        elif region.base % 4 or region.size % 4:
            report.add(
                "OU101", None,
                f"base {region.base:#x} / size {region.size:#x} "
                "not word aligned",
                where=f"region {region.name!r}",
            )
    for i, first in enumerate(plan):
        for second in plan[i + 1:]:
            if first.size > 0 and second.size > 0 and \
                    first.overlaps(second):
                report.add(
                    "OU100", None,
                    f"overlaps {second}",
                    where=f"region {first}",
                )
            if first.name == second.name:
                report.add(
                    "OU102", None,
                    f"name {first.name!r} also decodes "
                    f"[{second.base:#010x}, {second.end:#010x}); "
                    "by-name operations bind to the first",
                    where=f"region {first.name!r}",
                )


# -- slave windows & reachability (OU11x) --------------------------------

def check_windows(model: SystemModel, report: VerifyReport) -> None:
    mapped = {id(region.slave) for region in model.regions}
    for slave in model.slave_components:
        if id(slave) not in mapped:
            name = getattr(slave, "name", type(slave).__name__)
            report.add(
                "OU111", None,
                "registered with the simulation kernel but no bus "
                "region decodes to it",
                where=f"component {name!r}",
            )
    for ocp in model.ocps:
        if ocp.region is None:
            continue  # unreachable: already flagged above
        if ocp.region.size < REGISTER_FILE_BYTES:
            report.add(
                "OU110", None,
                f"window is {ocp.region.size} bytes but the register "
                f"file needs {REGISTER_FILE_BYTES}; bank registers "
                f"above offset {ocp.region.size:#x} are unreachable",
                where=ocp.name,
            )
        elif ocp.region.size < PERF_WINDOW_BYTES:
            report.add(
                "OU113", None,
                f"window is {ocp.region.size} bytes: the register file "
                f"fits but the performance counters end at "
                f"{PERF_WINDOW_BYTES}; profiling reads above offset "
                f"{ocp.region.size:#x} return garbage",
                where=ocp.name,
            )
        if ocp.region.base % OuessantCoprocessor.WINDOW_BYTES:
            report.add(
                "OU112", None,
                f"window base {ocp.region.base:#x} is not "
                f"{OuessantCoprocessor.WINDOW_BYTES}-byte aligned",
                where=ocp.name,
            )


# -- driver bank tables (OU12x) ------------------------------------------

def check_banks(
    model: SystemModel,
    report: VerifyReport,
    banks: Mapping[int, int],
    ocp_name: str = "ocp",
) -> None:
    seen_bases: dict = {}
    for bank, address in sorted(banks.items()):
        where = f"{ocp_name} bank {bank}"
        if address % 4:
            report.add(
                "OU121", None,
                f"base {address:#010x} is not word aligned; the bank "
                "register write traps",
                where=where,
            )
            continue
        if address in seen_bases:
            report.add(
                "OU123", None,
                f"base {address:#010x} already bound to bank "
                f"{seen_bases[address]}",
                where=where,
            )
        else:
            seen_bases[address] = bank
        if model.memmap is None:
            continue
        region = model.memmap.find(address)
        if region is None:
            report.add(
                "OU120", None,
                f"base {address:#010x} is not decoded by any bus "
                "slave",
                where=where,
            )
        elif not is_memory_slave(region.slave):
            report.add(
                "OU122", None,
                f"base {address:#010x} lands in register window "
                f"{region} -- transfers clobber control state",
                where=where,
            )


# -- FIFO fabric sizing (OU13x) ------------------------------------------

def check_fabric(model: SystemModel, report: VerifyReport) -> None:
    for ocp in model.ocps:
        if ocp.n_input_fifos != ocp.spec_inputs or \
                ocp.n_output_fifos != ocp.spec_outputs:
            report.add(
                "OU131", None,
                f"fabric has {ocp.n_input_fifos} in / "
                f"{ocp.n_output_fifos} out FIFOs, port spec demands "
                f"{ocp.spec_inputs} in / {ocp.spec_outputs} out",
                where=ocp.name,
            )
            continue
        for port in ocp.fabric:
            where = f"{ocp.name} {port.fifo_name}"
            if port.bus_width != 32:
                report.add(
                    "OU131", None,
                    f"bus-side width is {port.bus_width}, the system "
                    "word is 32",
                    where=where,
                )
            if port.rac_width != port.spec_width:
                report.add(
                    "OU131", None,
                    f"accelerator-side width is {port.rac_width}, the "
                    f"port spec demands {port.spec_width}",
                    where=where,
                )
            if port.depth != port.spec_depth:
                report.add(
                    "OU131", None,
                    f"depth is {port.depth}, the port spec demands "
                    f"{port.spec_depth}",
                    where=where,
                )
        if ocp.items_in is not None and not ocp.autostart:
            for index, appetite in enumerate(ocp.items_in):
                depth = next(
                    (p.depth for p in ocp.fabric
                     if p.direction == "in" and p.index == index),
                    None,
                )
                if depth is not None and appetite > depth:
                    report.add(
                        "OU130", None,
                        f"input port {index} needs {appetite} words "
                        f"per operation but the FIFO holds {depth} "
                        "and the RAC does not autostart: the "
                        "fill-then-start pattern deadlocks",
                        where=ocp.name,
                    )


# -- timing closure (OU14x) ----------------------------------------------

def check_timing(
    model: SystemModel,
    report: VerifyReport,
    technology: Optional[Technology] = None,
) -> None:
    for ocp in model.ocps:
        kwargs = {} if technology is None else {"technology": technology}
        timing = timing_report(
            ocp.ocp, clock_mhz=model.clock_mhz, **kwargs
        )
        if not timing.closes:
            report.add(
                "OU140", None,
                f"cannot close at {model.clock_mhz:.0f} MHz on "
                f"{timing.technology}: critical path "
                f"{timing.critical.component} reaches "
                f"{timing.fmax_mhz:.1f} MHz "
                f"(slack {timing.slack_ns} ns)",
                where=ocp.name,
            )
        else:
            period_ns = 1000.0 / model.clock_mhz
            if timing.slack_ns < MARGINAL_SLACK_FRACTION * period_ns:
                report.add(
                    "OU141", None,
                    f"closes at {model.clock_mhz:.0f} MHz with only "
                    f"{timing.slack_ns} ns slack "
                    f"({timing.critical.component})",
                    where=ocp.name,
                )


# -- coherence (OU15x) ---------------------------------------------------

def check_coherence(model: SystemModel, report: VerifyReport) -> None:
    if not model.caches:
        return
    for ocp in model.ocps:
        snooped = ocp.ocp.interface.snooped_caches
        for index, cache in enumerate(model.caches):
            if cache not in snooped:
                report.add(
                    "OU150", None,
                    f"CPU cache #{index} is not snooped by the "
                    "master engine; reads after an accelerated run "
                    "can return stale lines",
                    where=ocp.name,
                )
    if "dma" in {name for name in model.writeback_masters}:
        report.add(
            "OU150", None,
            "the DMA engine writes memory and has no snoop path; "
            "software must flush the cache around DMA transfers",
            where="dma",
        )


# -- interrupt routing (OU16x) -------------------------------------------

def check_irq(model: SystemModel, report: VerifyReport) -> None:
    for owner, line in model.irq_sources:
        count = sum(1 for l in model.irq_lines if l is line)
        if count == 0:
            report.add(
                "OU160", None,
                "interrupt line is not registered with the "
                "interrupt controller; wfi-based software never "
                "wakes on completion",
                where=owner,
            )
        elif count > 1:
            report.add(
                "OU161", None,
                f"interrupt line is registered {count} times; the "
                "duplicate vectors alias one line",
                where=owner,
            )


# -- throughput closure (OU162/OU163) -------------------------------------

#: worst cases consuming more than this share of the budget are marginal
MARGINAL_BUDGET_FRACTION = 0.90


def check_throughput(
    model: SystemModel,
    report: VerifyReport,
    program: Sequence,
    ocp_index: int,
    budget_cycles: int,
) -> None:
    """Does the firmware's static WCET fit a per-run cycle budget?

    The timing pass (OU14x) closes the *clock*; this closes the
    *throughput*: the cost analyzer's worst-case cycle count for the
    firmware, on the RAC actually hosted by the target OCP and over
    the elaborated bus/memory timing, must fit ``budget_cycles``.
    """
    from ..perfbound import CostModel, RacTiming, bound_program
    from ..rac.base import StreamingRAC
    from ..verify.domain import Interval

    if budget_cycles < 1:
        raise ValueError(f"budget_cycles must be >= 1: {budget_cycles}")
    if not 0 <= ocp_index < len(model.ocps):
        return
    ocp_model = model.ocps[ocp_index]
    ocp = ocp_model.ocp
    timing = (RacTiming.of(ocp.rac)
              if isinstance(ocp.rac, StreamingRAC) else None)
    extra = {}
    if model.bus_protocol is not None:
        extra["protocol"] = model.bus_protocol
    cost_model = CostModel(
        mem_latency=Interval.point(model.mem_latency),
        rac=timing,
        ibuf_size=ocp.controller.ibuf_size,
        prefetch=ocp.controller.prefetch,
        **extra,
    )
    bound = bound_program(program, ocp.rac, model=cost_model)
    if not bound.bounded:
        refusals = ", ".join(sorted(set(bound.report.codes()))) or "?"
        report.add(
            "OU162", None,
            f"the firmware has no static cycle bound ({refusals}); "
            f"the {budget_cycles}-cycle throughput budget cannot be "
            "closed",
            where=ocp_model.name,
        )
        return
    wcet = int(bound.total.hi)
    if wcet > budget_cycles:
        report.add(
            "OU162", None,
            f"worst-case firmware cost {wcet} cycles exceeds the "
            f"{budget_cycles}-cycle throughput budget "
            f"(best case {int(bound.total.lo)})",
            where=ocp_model.name,
        )
    elif wcet > MARGINAL_BUDGET_FRACTION * budget_cycles:
        report.add(
            "OU163", None,
            f"worst-case firmware cost {wcet} cycles consumes over "
            f"{100 * MARGINAL_BUDGET_FRACTION:.0f}% of the "
            f"{budget_cycles}-cycle throughput budget",
            where=ocp_model.name,
        )


# -- scheduler capability tables (OU17x) ----------------------------------

def check_capability_kinds(
    kinds: Sequence[str],
    report: VerifyReport,
    capabilities: Mapping[str, Sequence[int]],
) -> None:
    """Validate a kind->OCP routing table against a kind list.

    ``kinds[i]`` is the kernel kind OCP ``i`` serves; the list can
    come from an elaborated SoC (:func:`check_capabilities`) or from a
    *planned* RAC lineup
    (:meth:`repro.sched.capability.CapabilityTable.validate_plan`), so
    routing mistakes surface before elaboration.
    """
    for kind, indices in capabilities.items():
        valid = 0
        for index in indices:
            where = f"capability[{kind!r}]"
            if not 0 <= index < len(kinds):
                report.add(
                    "OU171", None,
                    f"routes to OCP {index}, but only "
                    f"{len(kinds)} OCP(s) are elaborated",
                    where=where,
                )
            elif kinds[index] != kind:
                report.add(
                    "OU171", None,
                    f"routes to OCP {index}, whose RAC serves "
                    f"{kinds[index]!r}",
                    where=where,
                )
            else:
                valid += 1
        if not valid:
            report.add(
                "OU170", None,
                "no elaborated RAC serves this kernel kind; jobs of "
                "this kind can never be dispatched",
                where=f"capability[{kind!r}]",
            )


def check_capabilities(
    model: SystemModel,
    report: VerifyReport,
    capabilities: Mapping[str, Sequence[int]],
) -> None:
    """Validate a kind->OCP routing table against the elaborated SoC.

    The scheduler dispatches by kernel kind; a table naming a kind no
    RAC serves (OU170) or routing to a wrong/absent OCP (OU171) is a
    dispatch-time failure, so both are errors.
    """
    check_capability_kinds(
        [ocp.ocp.rac.kind for ocp in model.ocps], report, capabilities
    )
