"""Analyzable view of an elaborated (but not yet simulated) system.

The checks in :mod:`repro.soclint.checks` do not walk live objects
directly; they read a :class:`SystemModel` extracted here.  That keeps
every check a pure function over plain data, lets the same checks run
on a *planned* memory map (a list of :class:`PlannedRegion`) before any
slave object exists, and gives the differential test suite a single
place to fabricate broken systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..bus.memmap import MemoryMap, Region
from ..bus.types import BusSlave
from ..core.coprocessor import OuessantCoprocessor
from ..core.interface import OuessantInterface
from ..core.registers import N_REGISTERS
from ..mem.cache import Cache
from ..mem.memory import Memory
from ..rac.base import StreamingRAC


@dataclass(frozen=True)
class PlannedRegion:
    """One region of a memory-map *plan* (pre-elaboration).

    Unlike :class:`~repro.bus.memmap.Region`, a plan may be
    inconsistent -- that is exactly what the map checks exist to catch
    before :meth:`MemoryMap.add` raises mid-elaboration.
    """

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def overlaps(self, other: "PlannedRegion") -> bool:
        return self.base < other.end and other.base < self.end

    def __str__(self) -> str:
        return f"{self.name}: [{self.base:#010x}, {self.end:#010x})"


@dataclass
class FabricPort:
    """One built FIFO next to what the RAC's port spec demands."""

    direction: str          # "in" | "out"
    index: int
    fifo_name: str
    bus_width: int          # the 32-bit system-word side
    rac_width: int          # accelerator-side width actually built
    spec_width: int         # accelerator-side width the spec demands
    depth: int
    spec_depth: int


@dataclass
class OcpModel:
    """Everything the checks need to know about one coprocessor."""

    name: str
    ocp: OuessantCoprocessor
    region: Optional[Region]
    fabric: List[FabricPort]
    n_input_fifos: int
    n_output_fifos: int
    spec_inputs: int
    spec_outputs: int
    #: per-operation input appetite (words), for streaming RACs
    items_in: Optional[List[int]] = None
    autostart: bool = True
    irq_registrations: int = 0


@dataclass
class SystemModel:
    """The extracted component graph the checks run over."""

    regions: List[Region] = field(default_factory=list)
    memmap: Optional[MemoryMap] = None
    ocps: List[OcpModel] = field(default_factory=list)
    #: bus-slave components registered with the kernel, mapped or not
    slave_components: List[BusSlave] = field(default_factory=list)
    #: IRQ lines registered with the interrupt controller, in order
    irq_lines: List[object] = field(default_factory=list)
    #: IRQ sources that *should* be routed: (owner name, line)
    irq_sources: List[tuple] = field(default_factory=list)
    #: CPU-side caches that must be snooped by memory-writing masters
    caches: List[Cache] = field(default_factory=list)
    #: names of masters that write memory behind the CPU's back
    writeback_masters: List[str] = field(default_factory=list)
    clock_mhz: float = 50.0
    #: bus burst protocol, for cost-bound checks (None when no bus)
    bus_protocol: Optional[object] = None
    #: main-memory access latency in cycles (1 when unknown)
    mem_latency: int = 1

    def region_of(self, slave: BusSlave) -> Optional[Region]:
        for region in self.regions:
            if region.slave is slave:
                return region
        return None


def _fabric_ports(ocp: OuessantCoprocessor) -> List[FabricPort]:
    ports = []
    spec = ocp.rac.ports if ocp.rac is not None else None
    if spec is None:
        return ports
    for index, fifo in enumerate(ocp.fifos_in):
        spec_width = (spec.input_widths[index]
                      if index < len(spec.input_widths) else 0)
        ports.append(FabricPort(
            direction="in", index=index, fifo_name=fifo.name,
            bus_width=fifo.width_push, rac_width=fifo.width_pop,
            spec_width=spec_width, depth=fifo.depth,
            spec_depth=spec.fifo_depth,
        ))
    for index, fifo in enumerate(ocp.fifos_out):
        spec_width = (spec.output_widths[index]
                      if index < len(spec.output_widths) else 0)
        ports.append(FabricPort(
            direction="out", index=index, fifo_name=fifo.name,
            bus_width=fifo.width_pop, rac_width=fifo.width_push,
            spec_width=spec_width, depth=fifo.depth,
            spec_depth=spec.fifo_depth,
        ))
    return ports


def extract_model(
    soc,
    clock_mhz: Optional[float] = None,
    caches: Optional[Sequence[Cache]] = None,
) -> SystemModel:
    """Build the analyzable view of a :class:`~repro.system.SoC`.

    Accepts anything SoC-shaped: the attributes actually read are
    ``sim``, ``bus``, ``irqc``, ``ocps``, ``dma`` and (optionally)
    ``clock_mhz``, so hand-rolled systems from the test corpus work
    unchanged.
    """
    model = SystemModel()
    bus = getattr(soc, "bus", None)
    if bus is not None:
        model.memmap = bus.memmap
        model.regions = bus.memmap.regions
        model.bus_protocol = getattr(bus, "protocol", None)
    memory = getattr(soc, "memory", None)
    if memory is not None:
        model.mem_latency = getattr(memory, "access_latency", 1)
    model.clock_mhz = (
        clock_mhz if clock_mhz is not None
        else getattr(soc, "clock_mhz", 50.0)
    )
    model.caches = list(caches or ())

    sim = getattr(soc, "sim", None)
    if sim is not None:
        for comp in sim.components:
            if isinstance(comp, BusSlave):
                model.slave_components.append(comp)

    irqc = getattr(soc, "irqc", None)
    if irqc is not None:
        model.irq_lines = list(irqc.lines)

    for index, ocp in enumerate(getattr(soc, "ocps", ())):
        rac = ocp.rac
        streaming = isinstance(rac, StreamingRAC)
        registrations = sum(
            1 for line in model.irq_lines if line is ocp.irq
        )
        model.ocps.append(OcpModel(
            name=ocp.name,
            ocp=ocp,
            region=model.region_of(ocp.interface),
            fabric=_fabric_ports(ocp),
            n_input_fifos=len(ocp.fifos_in),
            n_output_fifos=len(ocp.fifos_out),
            spec_inputs=len(rac.ports.input_widths) if rac else 0,
            spec_outputs=len(rac.ports.output_widths) if rac else 0,
            items_in=list(rac.items_in) if streaming else None,
            autostart=getattr(rac, "autostart", True),
            irq_registrations=registrations,
        ))
        model.irq_sources.append((ocp.name, ocp.irq))
        model.writeback_masters.append(ocp.name)

    dma = getattr(soc, "dma", None)
    if dma is not None:
        model.irq_sources.append((dma.name, dma.irq))
        model.writeback_masters.append(dma.name)

    return model


def planned_regions(regions: Sequence) -> List[PlannedRegion]:
    """Coerce (name, base, size) tuples / Regions into a plan."""
    plan: List[PlannedRegion] = []
    for item in regions:
        if isinstance(item, PlannedRegion):
            plan.append(item)
        elif isinstance(item, Region):
            plan.append(PlannedRegion(item.name, item.base, item.size))
        else:
            name, base, size = item
            plan.append(PlannedRegion(str(name), int(base), int(size)))
    return plan


def is_memory_slave(slave: BusSlave) -> bool:
    """True for plain storage (transfers through it are data moves)."""
    return isinstance(slave, Memory)


def is_register_slave(slave: BusSlave) -> bool:
    """True for register-file slaves a data bank must never target."""
    return isinstance(slave, OuessantInterface) or not is_memory_slave(
        slave
    )


#: byte size of the OCP register file (the minimum usable window)
REGISTER_FILE_BYTES = 4 * N_REGISTERS
