"""Entry points of the system-level analyzer.

:func:`lint_soc` walks an elaborated system; :func:`lint_map_plan`
checks a *planned* memory map before any slave object exists.  Both
emit findings through the shared diagnostics catalog
(:mod:`repro.verify.diagnostics`) under the ``OU1xx`` range, so
severity ordering, suppression and the JSON schema are identical to
the microcode verifier's.

When a firmware program and a driver bank table are supplied,
:func:`lint_soc` also runs the full ``OU0xx`` microcode pass with the
cross-layer contracts resolved against the *actual* memory map (per-
bank windows from the live region sizes, the RAC actually hosted by
the target OCP) -- one report covers both layers.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

from ..sim.errors import ConfigurationError
from ..synth.timing import ARTIX7_TECH, SPARTAN6_TECH, Technology
from ..verify.contracts import bank_windows_from_map
from ..verify.diagnostics import VerifyReport
from ..verify.engine import DEFAULT_STEP_BUDGET, verify_program
from . import checks
from .model import extract_model, planned_regions

_TECHNOLOGIES = {
    "artix7": ARTIX7_TECH,
    "spartan6": SPARTAN6_TECH,
}


def _resolve_technology(
    technology: Union[Technology, str, None]
) -> Optional[Technology]:
    if technology is None or isinstance(technology, Technology):
        return technology
    try:
        return _TECHNOLOGIES[str(technology).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown device technology {technology!r} "
            f"(known: {', '.join(sorted(_TECHNOLOGIES))})"
        ) from None


def lint_map_plan(
    regions: Sequence, suppress: Iterable[str] = ()
) -> VerifyReport:
    """Check a planned memory map: (name, base, size) tuples or Regions.

    Catches what :meth:`~repro.bus.memmap.MemoryMap.add` would reject
    mid-elaboration (overlap, misalignment) plus name shadowing, as a
    report instead of the first exception.
    """
    report = VerifyReport()
    checks.check_map_plan(planned_regions(regions), report)
    report.sort()
    report.apply_suppressions(suppress)
    return report


def lint_soc(
    soc,
    banks: Optional[Mapping[int, int]] = None,
    firmware=None,
    ocp_index: int = 0,
    clock_mhz: Optional[float] = None,
    technology: Union[Technology, str, None] = None,
    caches: Optional[Sequence] = None,
    capabilities: Optional[Mapping[str, Sequence[int]]] = None,
    step_budget: Optional[int] = DEFAULT_STEP_BUDGET,
    budget_cycles: Optional[int] = None,
    suppress: Iterable[str] = (),
) -> VerifyReport:
    """Statically analyze an elaborated system.

    Parameters
    ----------
    soc:
        A :class:`~repro.system.SoC` (or anything exposing ``sim``,
        ``bus``, ``irqc``, ``ocps`` and optionally ``dma``).
    banks:
        Driver bank table (bank number -> byte address) to validate
        against the memory map; also feeds the firmware cross-check.
    firmware:
        Microcode to verify against this exact system: an
        :class:`~repro.core.program.OuProgram`, an instruction
        sequence, or raw encoded words.  Runs the full ``OU0xx`` pass
        with per-bank windows resolved from the live memory map.
    ocp_index:
        Which coprocessor ``banks``/``firmware`` target.
    clock_mhz / technology:
        Timing-closure constraint; defaults to ``soc.clock_mhz``
        (50 MHz when absent) on Artix-7.
    caches:
        CPU-side caches that memory-writing masters must snoop.
    capabilities:
        Scheduler capability table (kernel kind -> OCP indices) to
        validate against the elaborated coprocessors (OU17x).
    budget_cycles:
        Per-run throughput budget: when given alongside ``firmware``,
        the cost analyzer's worst case for the firmware must fit it
        (OU162 error / OU163 marginal).
    suppress:
        Diagnostic codes to move aside (never silently dropped).
    """
    tech = _resolve_technology(technology)
    model = extract_model(soc, clock_mhz=clock_mhz, caches=caches)
    report = VerifyReport()

    checks.check_map_plan(planned_regions(model.regions), report)
    checks.check_windows(model, report)
    checks.check_fabric(model, report)
    checks.check_timing(model, report, technology=tech)
    checks.check_coherence(model, report)
    checks.check_irq(model, report)
    if capabilities is not None:
        checks.check_capabilities(model, report, capabilities)

    ocp_name = (
        model.ocps[ocp_index].name
        if 0 <= ocp_index < len(model.ocps) else f"ocp{ocp_index}"
    )
    if banks is not None:
        checks.check_banks(model, report, banks, ocp_name=ocp_name)

    if firmware is not None:
        program = _coerce_program(firmware)
        table = dict(banks or {})
        windows = {}
        if model.memmap is not None and table:
            # OU025 (bank-unmapped) duplicates the system-level OU120
            # already emitted by check_banks; keep only the windows.
            windows, _ = bank_windows_from_map(table, model.memmap)
        rac = None
        if 0 <= ocp_index < len(model.ocps):
            rac = model.ocps[ocp_index].ocp.rac
        micro = verify_program(
            program,
            rac=rac,
            configured_banks=set(table) if table else None,
            bank_windows=windows or None,
            step_budget=step_budget,
        )
        report.findings.extend(micro.findings)
        report.max_steps = micro.max_steps
        if budget_cycles is not None:
            checks.check_throughput(
                model, report, program, ocp_index, budget_cycles
            )

    report.sort()
    report.apply_suppressions(suppress)
    return report


def _coerce_program(firmware):
    """OuProgram | instruction sequence | raw words -> instructions."""
    instructions = getattr(firmware, "instructions", firmware)
    instructions = list(instructions)
    if instructions and isinstance(instructions[0], int):
        from ..core.encoding import decode

        instructions = [decode(word) for word in instructions]
    return instructions
