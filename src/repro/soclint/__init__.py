"""Elaboration-time SoC integrity analyzer.

The paper's integration story -- an OCP drops into a SoC as a regular
slave whose bank registers virtualize the memory map -- means most
integration failures are *configuration* bugs that exist before the
first simulated cycle: overlapping windows, a bank pointing at a
register file, an undersized FIFO, a clock the design cannot close.
This package catches them statically, the way RTL lint/CDC tools catch
structural bugs at build time.

Public surface:

* :func:`~repro.soclint.engine.lint_soc` -- analyze an elaborated
  system (optionally composing the ``OU0xx`` microcode pass against
  the live memory map),
* :func:`~repro.soclint.engine.lint_map_plan` -- analyze a planned
  memory map before elaboration,
* the ``OU1xx`` diagnostics live in the shared catalog
  (:data:`repro.verify.CATALOG`), so severity ordering, suppression
  and JSON rendering match the microcode verifier exactly.

See ``docs/ANALYSIS.md`` ("System-level analysis") for the catalog and
the differential soundness discipline behind it.
"""

from .engine import lint_map_plan, lint_soc
from .model import PlannedRegion, SystemModel, extract_model

__all__ = [
    "PlannedRegion",
    "SystemModel",
    "extract_model",
    "lint_map_plan",
    "lint_soc",
]
