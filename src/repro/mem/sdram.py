"""SDRAM with an open-row latency model.

The Nexys4 board of the paper carries cellular RAM/SRAM (flat
latency); many Ouessant targets (and the future-work Zynq, whose DDR
sits behind the HP port) do not.  :class:`SDRAM` extends the flat
:class:`~repro.mem.memory.Memory` with the first-order DRAM effect:
a burst landing in the currently open row of its bank pays the CAS
latency only, while a row miss adds precharge + activate.

The bus consults :meth:`latency_for` at grant time (address-aware
slaves are a small extension of the BusSlave contract), so burst
*sequences* see realistic behaviour: Ouessant's long sequential DMA
bursts are row-friendly, a PIO driver's scattered word accesses are
not -- one more reason the integrated DMA wins.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.errors import ConfigurationError
from ..sim.tracing import Stats
from ..utils import bits
from .memory import Memory


class SDRAM(Memory):
    """Open-row DRAM latency on top of the flat word array.

    Parameters
    ----------
    row_bytes:
        Row (page) size per internal bank; power of two.
    n_banks:
        Internal DRAM banks, each remembering its own open row.
    cas_latency:
        First-beat latency on a row hit.
    row_miss_penalty:
        Extra cycles (precharge + activate) on a row miss.
    """

    def __init__(
        self,
        name: str = "sdram",
        size_bytes: int = 1 << 20,
        row_bytes: int = 2048,
        n_banks: int = 4,
        cas_latency: int = 3,
        row_miss_penalty: int = 9,
    ) -> None:
        super().__init__(name, size_bytes, access_latency=cas_latency)
        if not bits.is_power_of_two(row_bytes) or row_bytes < 64:
            raise ConfigurationError(f"bad row size {row_bytes}")
        if not bits.is_power_of_two(n_banks):
            raise ConfigurationError(f"bank count {n_banks} not a power of two")
        self.row_bytes = row_bytes
        self.n_banks = n_banks
        self.cas_latency = cas_latency
        self.row_miss_penalty = row_miss_penalty
        self._open_rows: List[Optional[int]] = [None] * n_banks
        self.dram_stats = Stats()

    def _split(self, offset: int) -> "tuple[int, int]":
        row = offset // self.row_bytes
        bank = row & (self.n_banks - 1)
        return bank, row

    def latency_for(self, offset: int, burst: int) -> int:
        """First-beat latency of a burst starting at ``offset``.

        Consulted by the bus at grant time; updates the open-row state
        (the burst leaves its final row open).  A burst crossing into
        a new row charges one extra miss penalty (simplification: at
        most one boundary crossing is charged; Ouessant's 16..128-word
        bursts cross at most one 2 KB row).
        """
        bank, row = self._split(offset)
        latency = self.cas_latency
        if self._open_rows[bank] == row:
            self.dram_stats.incr("row_hits")
        else:
            self.dram_stats.incr("row_misses")
            latency += self.row_miss_penalty
        self._open_rows[bank] = row
        end_bank, end_row = self._split(offset + 4 * burst - 4)
        if (end_bank, end_row) != (bank, row):
            # rows interleave across banks, so a boundary crossing
            # activates the next bank's row
            if self._open_rows[end_bank] != end_row:
                self.dram_stats.incr("row_misses")
                latency += self.row_miss_penalty
            self._open_rows[end_bank] = end_row
        return latency

    @property
    def row_hit_rate(self) -> float:
        hits = self.dram_stats.get("row_hits")
        total = hits + self.dram_stats.get("row_misses")
        return hits / total if total else 0.0

    def precharge_all(self) -> None:
        """Close every row (refresh / power-state model hook)."""
        self._open_rows = [None] * self.n_banks
