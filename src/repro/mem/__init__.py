"""Memory substrate: SRAM/ROM models, DMA peripheral, snooping cache."""

from .cache import Cache
from .dma import (
    CTRL_DONE,
    CTRL_IE,
    CTRL_START,
    DMAEngine,
    REG_COUNT,
    REG_CTRL,
    REG_DST,
    REG_SRC,
)
from .memory import Memory, ROM
from .sdram import SDRAM

__all__ = [
    "CTRL_DONE",
    "CTRL_IE",
    "CTRL_START",
    "Cache",
    "DMAEngine",
    "Memory",
    "REG_COUNT",
    "REG_CTRL",
    "REG_DST",
    "REG_SRC",
    "ROM",
    "SDRAM",
]
