"""Word-addressed memory models.

:class:`Memory` is the SRAM of the paper's Nexys4 board (16 MB, one wait
state) as seen from the bus: a flat array of 32-bit words with a
configurable first-access latency.  Sequential beats of a burst stream
at bus speed, which is what makes Ouessant's burst DMA efficient.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..sim.errors import MemoryError_
from ..utils import bits
from ..bus.types import BusSlave


class Memory(BusSlave):
    """Flat 32-bit word memory with configurable access latency.

    Parameters
    ----------
    size_bytes:
        Capacity; must be a multiple of 4.
    access_latency:
        Wait states inserted on the first beat of a bus burst.
    fill:
        Initial word value (default 0).
    """

    def __init__(
        self,
        name: str = "sram",
        size_bytes: int = 1 << 20,
        access_latency: int = 1,
        fill: int = 0,
    ) -> None:
        if size_bytes <= 0 or size_bytes % 4 != 0:
            raise MemoryError_(f"bad memory size {size_bytes}")
        self.name = name
        self.size_bytes = size_bytes
        self.access_latency = access_latency
        self._words: List[int] = [fill & bits.WORD_MASK] * (size_bytes // 4)

    # -- helpers --------------------------------------------------------
    @property
    def size_words(self) -> int:
        return len(self._words)

    @property
    def words(self) -> List[int]:
        """Live reference to the backing word list.

        Exposed so the instruction-set simulator can run loads/stores
        without per-access bounds re-checks; mutating it bypasses the
        ROM write lock, so only simulators should use it.
        """
        return self._words

    def _index(self, offset: int) -> int:
        if offset % 4 != 0:
            raise MemoryError_(f"unaligned access at offset {offset:#x}")
        index = offset // 4
        if not 0 <= index < len(self._words):
            raise MemoryError_(
                f"offset {offset:#x} outside {self.name} "
                f"(size {self.size_bytes:#x})"
            )
        return index

    # -- BusSlave interface ------------------------------------------------
    def read_word(self, offset: int) -> int:
        return self._words[self._index(offset)]

    def write_word(self, offset: int, value: int) -> None:
        self._words[self._index(offset)] = value & bits.WORD_MASK

    def read_burst(self, offset: int, count: int) -> List[int]:
        start = self._index(offset)
        if start + count > len(self._words):
            raise MemoryError_(
                f"burst [{offset:#x}+{4 * count}] overruns {self.name}"
            )
        return self._words[start : start + count]

    def write_burst(self, offset: int, values: List[int]) -> None:
        start = self._index(offset)
        if start + len(values) > len(self._words):
            raise MemoryError_(
                f"burst [{offset:#x}+{4 * len(values)}] overruns {self.name}"
            )
        self._words[start : start + len(values)] = [
            v & bits.WORD_MASK for v in values
        ]

    # -- loader convenience ---------------------------------------------
    def load_words(self, offset: int, words: Sequence[int]) -> None:
        """Backdoor bulk initialization (no cycles)."""
        self.write_burst(offset, list(words))

    def dump_words(self, offset: int, count: int) -> List[int]:
        """Backdoor bulk readout (no cycles)."""
        return list(self.read_burst(offset, count))

    def load_bytes(self, offset: int, data: bytes) -> None:
        self.load_words(offset, bits.words_from_bytes(data))

    def clear(self) -> None:
        self._words = [0] * len(self._words)


class ROM(Memory):
    """Read-only memory: bus writes raise, backdoor loads allowed."""

    def __init__(
        self,
        name: str = "rom",
        contents: Iterable[int] = (),
        access_latency: int = 1,
    ) -> None:
        words = [w & bits.WORD_MASK for w in contents]
        size = max(4, 4 * len(words))
        super().__init__(name, size, access_latency)
        if words:
            self._words[: len(words)] = words
        self._locked = True

    def write_word(self, offset: int, value: int) -> None:
        if getattr(self, "_locked", False):
            raise MemoryError_(f"write to ROM {self.name} at {offset:#x}")
        super().write_word(offset, value)

    def write_burst(self, offset: int, values: List[int]) -> None:
        if getattr(self, "_locked", False):
            raise MemoryError_(f"burst write to ROM {self.name}")
        super().write_burst(offset, values)

    def load_words(self, offset: int, words: Sequence[int]) -> None:
        self._locked = False
        try:
            super().load_words(offset, words)
        finally:
            self._locked = True
