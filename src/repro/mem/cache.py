"""Direct-mapped write-through cache with bus snooping.

Section IV of the paper notes that when an OCP writes results to memory
behind the CPU's back, "the only trick is to manage caches properly,
which is often useless since current systems implement cache snooping".
This module provides that snooping cache so the claim can be exercised:
the Ouessant master engine calls :meth:`Cache.snoop_write` for every
word it writes, invalidating any stale line the CPU holds.

The cache is a timing/coherence model, not a second copy of the data:
lookups tell the CPU how many cycles an access costs and keep the tag
array coherent, while the data always lives in backing memory.  This
keeps the instruction-set simulator fast without losing the behaviour
the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.errors import ConfigurationError
from ..sim.tracing import Stats
from ..utils import bits


@dataclass
class _Line:
    valid: bool = False
    tag: int = -1


class Cache:
    """Direct-mapped, write-through, no-write-allocate cache model.

    Parameters
    ----------
    size_bytes:
        Total capacity (power of two).
    line_bytes:
        Line size (power of two, >= 4).
    hit_cycles:
        Cost of a hit (1 on Leon3).
    miss_penalty:
        Extra cycles to refill a line from the bus (beyond the hit cost).
    """

    def __init__(
        self,
        size_bytes: int = 4096,
        line_bytes: int = 32,
        hit_cycles: int = 1,
        miss_penalty: int = 8,
    ) -> None:
        if not bits.is_power_of_two(size_bytes):
            raise ConfigurationError(f"cache size {size_bytes} not a power of two")
        if not bits.is_power_of_two(line_bytes) or line_bytes < 4:
            raise ConfigurationError(f"bad line size {line_bytes}")
        if line_bytes > size_bytes:
            raise ConfigurationError("line larger than cache")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.hit_cycles = hit_cycles
        self.miss_penalty = miss_penalty
        self.n_lines = size_bytes // line_bytes
        self._offset_bits = bits.log2_exact(line_bytes)
        self._index_bits = bits.log2_exact(self.n_lines)
        self._lines: List[_Line] = [_Line() for _ in range(self.n_lines)]
        self.stats = Stats()

    # -- address helpers ----------------------------------------------
    def _split(self, address: int) -> "tuple[int, int]":
        index = (address >> self._offset_bits) & bits.mask(self._index_bits)
        tag = address >> (self._offset_bits + self._index_bits)
        return index, tag

    # -- CPU side -------------------------------------------------------
    def access_read(self, address: int) -> int:
        """Model a CPU load; returns the cycle cost and updates tags."""
        index, tag = self._split(address)
        line = self._lines[index]
        if line.valid and line.tag == tag:
            self.stats.incr("read_hits")
            return self.hit_cycles
        self.stats.incr("read_misses")
        line.valid = True
        line.tag = tag
        return self.hit_cycles + self.miss_penalty

    def access_write(self, address: int) -> int:
        """Model a CPU store (write-through: always goes to memory).

        No-write-allocate: a miss does not install the line.
        """
        index, tag = self._split(address)
        line = self._lines[index]
        if line.valid and line.tag == tag:
            self.stats.incr("write_hits")
        else:
            self.stats.incr("write_misses")
        return self.hit_cycles

    # -- bus side (coherence) ---------------------------------------------
    def snoop_write(self, address: int) -> bool:
        """Another master wrote ``address``: invalidate if we hold it.

        Returns True when a line was actually invalidated.
        """
        index, tag = self._split(address)
        line = self._lines[index]
        if line.valid and line.tag == tag:
            line.valid = False
            self.stats.incr("snoop_invalidations")
            return True
        return False

    def snoop_write_burst(self, address: int, count: int) -> int:
        """Snoop a burst of ``count`` words; returns invalidation count."""
        invalidated = 0
        for i in range(count):
            if self.snoop_write(address + 4 * i):
                invalidated += 1
        return invalidated

    def flush(self) -> None:
        """Invalidate everything (the software fallback to snooping)."""
        for line in self._lines:
            line.valid = False
        self.stats.incr("flushes")

    def holds(self, address: int) -> bool:
        index, tag = self._split(address)
        line = self._lines[index]
        return line.valid and line.tag == tag

    @property
    def hit_rate(self) -> float:
        hits = self.stats.get("read_hits") + self.stats.get("write_hits")
        total = hits + self.stats.get("read_misses") + self.stats.get("write_misses")
        return hits / total if total else 0.0
