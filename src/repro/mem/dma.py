"""Standalone DMA peripheral.

Section II of the paper describes the classical integration style where
"communication can be offloaded to a Direct Memory Access (DMA)
peripheral, in order to free GPP time" -- but the GPP remains
responsible for scheduling transfers and launching operations.  This
component models exactly that peripheral; the
:mod:`repro.baselines.dma_slave` baseline builds the classical design
around it so it can be compared against Ouessant's integrated DMA.

Register map (word offsets):

====== =======================================================
0x00   CTRL: bit0 START, bit1 IE (interrupt enable), bit2 DONE
0x04   SRC  source byte address
0x08   DST  destination byte address
0x0C   COUNT transfer length in 32-bit words
====== =======================================================
"""

from __future__ import annotations

import enum
from typing import Optional

from ..bus.bus import SystemBus
from ..bus.irq import IRQLine
from ..bus.types import AccessKind, BusRequest, BusSlave, BusTransfer
from ..sim.errors import ConfigurationError
from ..sim.kernel import Component
from ..utils import bits

CTRL_START = 1 << 0
CTRL_IE = 1 << 1
CTRL_DONE = 1 << 2

REG_CTRL = 0x00
REG_SRC = 0x04
REG_DST = 0x08
REG_COUNT = 0x0C


class _State(enum.Enum):
    IDLE = "idle"
    READ = "read"
    WRITE = "write"


class DMAEngine(Component, BusSlave):
    """Memory-to-memory DMA with a small internal staging buffer.

    The engine reads up to ``buffer_words`` per chunk, then writes them
    out, alternating until COUNT words have moved.  It is both a bus
    slave (register file) and a bus master (the transfers).
    """

    access_latency = 0

    def __init__(
        self,
        name: str = "dma",
        bus: Optional[SystemBus] = None,
        buffer_words: int = 64,
        priority: int = 1,
    ) -> None:
        Component.__init__(self, name)
        if buffer_words < 1:
            raise ConfigurationError("buffer_words must be >= 1")
        self.bus = bus
        self.buffer_words = buffer_words
        self.priority = priority
        self.irq = IRQLine(f"{name}.irq")
        self._ctrl = 0
        self._src = 0
        self._dst = 0
        self._count = 0
        self._state = _State.IDLE
        self._remaining = 0
        self._transfer: Optional[BusTransfer] = None
        self._buffer: list = []

    # -- register file (bus slave) ------------------------------------
    def read_word(self, offset: int) -> int:
        if offset == REG_CTRL:
            return self._ctrl
        if offset == REG_SRC:
            return self._src
        if offset == REG_DST:
            return self._dst
        if offset == REG_COUNT:
            return self._count
        return 0

    def write_word(self, offset: int, value: int) -> None:
        value &= bits.WORD_MASK
        if offset == REG_CTRL:
            starting = value & CTRL_START and not (self._ctrl & CTRL_START)
            self._ctrl = value & (CTRL_START | CTRL_IE)
            if starting:
                self._begin()
        elif offset == REG_SRC:
            self._src = value
        elif offset == REG_DST:
            self._dst = value
        elif offset == REG_COUNT:
            self._count = value

    # -- behaviour --------------------------------------------------------
    @property
    def done(self) -> bool:
        return bool(self._ctrl & CTRL_DONE)

    @property
    def busy(self) -> bool:
        return self._state is not _State.IDLE

    def _begin(self) -> None:
        # CTRL writes arrive through a bus transfer mid-cycle: drop the
        # cached indefinite-idle claim so dispatch re-polls us
        self.poke()
        if self._count == 0:
            self._finish()
            return
        self._remaining = self._count
        self._state = _State.READ
        self._transfer = None
        self.trace_event("start", src=hex(self._src), dst=hex(self._dst),
                         count=self._count)

    def _finish(self) -> None:
        self._state = _State.IDLE
        self._ctrl &= ~CTRL_START
        self._ctrl |= CTRL_DONE
        if self._ctrl & CTRL_IE:
            self.irq.assert_()
        self.trace_event("done")

    def next_activity(self):
        if self._state is _State.IDLE or self.bus is None:
            return None  # woken by a CTRL write (a bus-master action)
        if self._transfer is not None and not self._transfer.done:
            return None  # the bus completion wakes the system
        return self.now  # ready to consume a completion / issue a burst

    def tick(self) -> None:
        if self._state is _State.IDLE or self.bus is None:
            return
        if self._transfer is not None:
            if not self._transfer.done:
                return
            if self._state is _State.READ:
                self._buffer = list(self._transfer.data)
                self._transfer = None
                self._state = _State.WRITE
            else:
                moved = len(self._buffer)
                self._src += 4 * moved
                self._dst += 4 * moved
                self._remaining -= moved
                self._buffer = []
                self._transfer = None
                if self._remaining == 0:
                    self._finish()
                    return
                self._state = _State.READ
        if self._transfer is None and self._state is not _State.IDLE:
            self._issue()

    def _issue(self) -> None:
        if self._state is _State.READ:
            chunk = min(self._remaining, self.buffer_words)
            request = BusRequest(
                master=self.name,
                kind=AccessKind.READ,
                address=self._src,
                burst=chunk,
                priority=self.priority,
            )
        else:
            request = BusRequest(
                master=self.name,
                kind=AccessKind.WRITE,
                address=self._dst,
                burst=len(self._buffer),
                data=list(self._buffer),
                priority=self.priority,
            )
        self.trace_event(
            "burst", kind=request.kind.name.lower(),
            address=hex(request.address), words=request.burst,
        )
        self._transfer = self.bus.submit(request, waiter=self)

    def reset(self) -> None:
        self._ctrl = 0
        self._src = self._dst = self._count = 0
        self._state = _State.IDLE
        self._remaining = 0
        self._transfer = None
        self._buffer = []
        self.irq.clear()
