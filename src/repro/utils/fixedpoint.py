"""Fixed-point arithmetic helpers and golden references.

The two accelerators reproduced from the paper (the 2-D IDCT and the
Spiral-style iterative DFT) are fixed-point datapaths.  This module holds

* Q15 conversion / saturation / rounding primitives,
* the *bit-exact* fixed-point algorithms the RAC behavioural models
  execute (:func:`fft_q15`, :func:`idct2_q15`), and
* floating-point references (:func:`dft_reference`,
  :func:`idct2_reference`) used by tests to bound quantization error.

Keeping the golden arithmetic here -- rather than inside the RAC models --
lets the instruction-set-simulator software kernels, the RACs and the
tests all agree on one definition of "the right answer".
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

Q15_ONE = 1 << 15
Q15_MAX = Q15_ONE - 1
Q15_MIN = -Q15_ONE

# Number of fractional bits used by the IDCT coefficient matrix.
IDCT_COEF_BITS = 13


def saturate(value: int, lo: int = Q15_MIN, hi: int = Q15_MAX) -> int:
    """Clamp ``value`` into ``[lo, hi]``."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def float_to_q15(value: float) -> int:
    """Convert a float in roughly [-1, 1) to Q15 with saturation."""
    return saturate(int(round(value * Q15_ONE)))


def q15_to_float(value: int) -> float:
    return value / Q15_ONE


def q15_mul(a: int, b: int) -> int:
    """Q15 x Q15 -> Q15 with round-half-up, no saturation.

    This matches the rounding used by typical DSP multiplier blocks:
    ``(a*b + 2^14) >> 15`` in two's complement (arithmetic shift).
    """
    return (a * b + (1 << 14)) >> 15


def q15_mul_sat(a: int, b: int) -> int:
    return saturate(q15_mul(a, b))


def twiddle_table_q15(n: int) -> Tuple[List[int], List[int]]:
    """Q15 twiddle factors for an ``n``-point forward DFT.

    Returns ``(cos_table, sin_table)`` where entry ``k`` holds
    ``round(cos(2*pi*k/n) * 2^15)`` and ``round(-sin(2*pi*k/n) * 2^15)``
    saturated to Q15 (so ``cos(0)`` becomes ``Q15_MAX`` rather than
    ``2^15``, exactly as a 16-bit ROM would store it).
    """
    cos_t: List[int] = []
    sin_t: List[int] = []
    for k in range(n):
        angle = 2.0 * math.pi * k / n
        cos_t.append(saturate(int(round(math.cos(angle) * Q15_ONE))))
        sin_t.append(saturate(int(round(-math.sin(angle) * Q15_ONE))))
    return cos_t, sin_t


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def fft_q15_scalar(
    re: Sequence[int], im: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Pure-Python reference for :func:`fft_q15` (kept for cross-checking).

    One butterfly at a time, exactly as written in the paper's datapath
    description; the vectorized :func:`fft_q15` below must agree with
    this bit for bit.
    """
    n = len(re)
    if n != len(im):
        raise ValueError("re/im length mismatch")
    if n == 0 or n & (n - 1):
        raise ValueError(f"FFT size must be a power of two, got {n}")
    stages = n.bit_length() - 1
    cos_t, sin_t = twiddle_table_q15(n)

    xr = [int(v) for v in re]
    xi = [int(v) for v in im]
    # Bit-reversal permutation (decimation in time).
    for i in range(n):
        j = bit_reverse(i, stages)
        if j > i:
            xr[i], xr[j] = xr[j], xr[i]
            xi[i], xi[j] = xi[j], xi[i]

    span = 1
    for _stage in range(stages):
        stride = n // (2 * span)
        for start in range(0, n, 2 * span):
            for k in range(span):
                idx = start + k
                wr = cos_t[k * stride]
                wi = sin_t[k * stride]
                tr = q15_mul(xr[idx + span], wr) - q15_mul(xi[idx + span], wi)
                ti = q15_mul(xr[idx + span], wi) + q15_mul(xi[idx + span], wr)
                # Per-stage scaling by 1/2 (arithmetic shift, floor).
                ar, ai = xr[idx], xi[idx]
                xr[idx] = (ar + tr) >> 1
                xi[idx] = (ai + ti) >> 1
                xr[idx + span] = (ar - tr) >> 1
                xi[idx + span] = (ai - ti) >> 1
        span *= 2
    return xr, xi


# Per-size FFT plan: bit-reversal permutation, per-stage butterfly index
# arrays and twiddle tables, all as int64 ndarrays.  Sizes in practice
# are a handful of powers of two, so an unbounded cache is fine.
_FFT_PLANS: dict = {}


def _fft_plan(n: int):
    plan = _FFT_PLANS.get(n)
    if plan is None:
        stages = n.bit_length() - 1
        rev = np.array([bit_reverse(i, stages) for i in range(n)],
                       dtype=np.int64)
        cos_t, sin_t = twiddle_table_q15(n)
        cos_a = np.array(cos_t, dtype=np.int64)
        sin_a = np.array(sin_t, dtype=np.int64)
        stage_ix = []
        span = 1
        every = np.arange(n, dtype=np.int64)
        for _stage in range(stages):
            stride = n // (2 * span)
            top = every[(every & span) == 0]
            widx = (top & (span - 1)) * stride
            stage_ix.append((top, top + span, cos_a[widx], sin_a[widx]))
            span *= 2
        plan = (rev, stage_ix)
        _FFT_PLANS[n] = plan
    return plan


def fft_q15(
    re: Sequence[int], im: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Bit-exact iterative radix-2 DIT FFT in Q15.

    Scales by 1/2 at every stage, so the output equals ``DFT(x) / N`` --
    the standard fixed-point convention (guarantees no overflow).  This
    is the arithmetic the DFT RAC behavioural model executes.

    Parameters are the real and imaginary parts as Q15 integers; the
    result is returned the same way.

    Internally the butterflies of each stage run as whole-array int64
    operations; int64 ``*``, ``+`` and arithmetic ``>>`` are exact, so
    the result is bit-identical to :func:`fft_q15_scalar` (enforced by
    tests).
    """
    n = len(re)
    if n != len(im):
        raise ValueError("re/im length mismatch")
    if n == 0 or n & (n - 1):
        raise ValueError(f"FFT size must be a power of two, got {n}")
    rev, stage_ix = _fft_plan(n)
    half = 1 << 14

    xr = np.asarray(re, dtype=np.int64)[rev]
    xi = np.asarray(im, dtype=np.int64)[rev]
    for top, bot, wr, wi in stage_ix:
        br = xr[bot]
        bi = xi[bot]
        tr = ((br * wr + half) >> 15) - ((bi * wi + half) >> 15)
        ti = ((br * wi + half) >> 15) + ((bi * wr + half) >> 15)
        ar = xr[top]
        ai = xi[top]
        xr[top] = (ar + tr) >> 1
        xi[top] = (ai + ti) >> 1
        xr[bot] = (ar - tr) >> 1
        xi[bot] = (ai - ti) >> 1
    return xr.tolist(), xi.tolist()


def direct_dft_q15(
    re: Sequence[int], im: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Bit-exact direct O(N^2) DFT in Q15, scaled by 1/N.

    This is the arithmetic of the hand-written "time-optimized software"
    assembly kernel run on the GPP instruction-set simulator (the paper's
    SW baseline for the DFT row of Table I).  Accumulation happens in a
    wide register (Python int), with one final shift by log2(N).
    """
    n = len(re)
    if n == 0 or n & (n - 1):
        raise ValueError(f"DFT size must be a power of two, got {n}")
    shift = n.bit_length() - 1
    cos_t, sin_t = twiddle_table_q15(n)
    out_r: List[int] = []
    out_i: List[int] = []
    for k in range(n):
        acc_r = 0
        acc_i = 0
        idx = 0
        for t in range(n):
            wr = cos_t[idx]
            wi = sin_t[idx]
            acc_r += re[t] * wr - im[t] * wi
            acc_i += re[t] * wi + im[t] * wr
            idx = (idx + k) & (n - 1)
        out_r.append(saturate((acc_r >> (15 + shift))))
        out_i.append(saturate((acc_i >> (15 + shift))))
    return out_r, out_i


def dft_reference(
    re: Sequence[int], im: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Floating point DFT/N of a Q15 signal, returned in Q15 units.

    Used by tests to bound the quantization error of :func:`fft_q15`.
    """
    x = np.asarray(re, dtype=np.float64) + 1j * np.asarray(im, dtype=np.float64)
    spectrum = np.fft.fft(x) / len(x)
    return spectrum.real, spectrum.imag


# ---------------------------------------------------------------------------
# 2-D IDCT (8x8), JPEG style
# ---------------------------------------------------------------------------

IDCT_SIZE = 8


def idct_coefficient_matrix() -> List[List[int]]:
    """The fixed-point 1-D IDCT basis matrix, ``Q(2.13)`` entries.

    ``M[n][k] = round(alpha(k) * cos((2n+1) k pi / 16) * 2^13)`` with
    ``alpha(0)=sqrt(1/8)`` and ``alpha(k)=sqrt(2/8)``; a 1-D IDCT is then
    ``out[n] = (sum_k M[n][k] * in[k]) >> 13`` (with rounding).
    """
    n_pts = IDCT_SIZE
    matrix: List[List[int]] = []
    for n in range(n_pts):
        row: List[int] = []
        for k in range(n_pts):
            alpha = math.sqrt(1.0 / n_pts) if k == 0 else math.sqrt(2.0 / n_pts)
            value = alpha * math.cos((2 * n + 1) * k * math.pi / (2 * n_pts))
            row.append(int(round(value * (1 << IDCT_COEF_BITS))))
        matrix.append(row)
    return matrix


_IDCT_MATRIX = idct_coefficient_matrix()


def idct1_q15(coefs: Sequence[int]) -> List[int]:
    """Bit-exact fixed-point 1-D 8-point IDCT (row of the 2-D transform)."""
    if len(coefs) != IDCT_SIZE:
        raise ValueError(f"expected {IDCT_SIZE} coefficients, got {len(coefs)}")
    half = 1 << (IDCT_COEF_BITS - 1)
    out: List[int] = []
    for n in range(IDCT_SIZE):
        acc = 0
        row = _IDCT_MATRIX[n]
        for k in range(IDCT_SIZE):
            acc += row[k] * int(coefs[k])
        out.append((acc + half) >> IDCT_COEF_BITS)
    return out


def idct2_q15_scalar(block: Sequence[Sequence[int]]) -> List[List[int]]:
    """Pure-Python reference for :func:`idct2_q15` (kept for cross-checking)."""
    if len(block) != IDCT_SIZE or any(len(r) != IDCT_SIZE for r in block):
        raise ValueError("block must be 8x8")
    rows = [idct1_q15(row) for row in block]
    cols = [idct1_q15([rows[r][c] for r in range(IDCT_SIZE)])
            for c in range(IDCT_SIZE)]
    return [
        [saturate(cols[c][r], -(1 << 15), (1 << 15) - 1)
         for c in range(IDCT_SIZE)]
        for r in range(IDCT_SIZE)
    ]


_IDCT_MATRIX_NP = np.array(_IDCT_MATRIX, dtype=np.int64)


def idct2_q15(block: Sequence[Sequence[int]]) -> List[List[int]]:
    """Bit-exact fixed-point 2-D 8x8 IDCT (rows then columns).

    Input: 8x8 integer DCT coefficients (JPEG dequantized range).
    Output: 8x8 integers saturated to 16 bits.  This is the arithmetic
    of the IDCT RAC and of the software IDCT kernel.

    Implemented as two int64 matrix products with rounding shifts --
    exact integer arithmetic, bit-identical to :func:`idct2_q15_scalar`
    (enforced by tests).
    """
    if len(block) != IDCT_SIZE or any(len(r) != IDCT_SIZE for r in block):
        raise ValueError("block must be 8x8")
    half = 1 << (IDCT_COEF_BITS - 1)
    arr = np.asarray(block, dtype=np.int64)
    # Row pass: rows[r] = idct1(block[r]); column pass: one more 1-D
    # transform down each column of the row result.
    rows = (arr @ _IDCT_MATRIX_NP.T + half) >> IDCT_COEF_BITS
    cols = (_IDCT_MATRIX_NP @ rows + half) >> IDCT_COEF_BITS
    return np.clip(cols, -(1 << 15), (1 << 15) - 1).tolist()


def idct2_reference(block: Sequence[Sequence[int]]) -> np.ndarray:
    """Floating-point separable 2-D IDCT used to bound quantization error."""
    arr = np.asarray(block, dtype=np.float64)
    basis = np.zeros((IDCT_SIZE, IDCT_SIZE))
    for n in range(IDCT_SIZE):
        for k in range(IDCT_SIZE):
            alpha = math.sqrt(1.0 / 8) if k == 0 else math.sqrt(2.0 / 8)
            basis[n, k] = alpha * math.cos((2 * n + 1) * k * math.pi / 16)
    return basis @ arr @ basis.T


def block_to_words(block: Sequence[Sequence[int]]) -> List[int]:
    """Flatten an 8x8 block row-major into 64 sign-extended 32-bit words."""
    words: List[int] = []
    for row in block:
        for value in row:
            words.append(int(value) & 0xFFFFFFFF)
    return words


def words_to_block(words: Sequence[int]) -> List[List[int]]:
    """Inverse of :func:`block_to_words` (values re-signed from 32 bits)."""
    if len(words) != IDCT_SIZE * IDCT_SIZE:
        raise ValueError(f"expected 64 words, got {len(words)}")
    out: List[List[int]] = []
    for r in range(IDCT_SIZE):
        row = []
        for c in range(IDCT_SIZE):
            raw = words[r * IDCT_SIZE + c] & 0xFFFFFFFF
            row.append(raw - (1 << 32) if raw & (1 << 31) else raw)
        out.append(row)
    return out


def complex_to_words(re: Sequence[int], im: Sequence[int]) -> List[int]:
    """Interleave Q15 (re, im) pairs into 32-bit words, one pair per word.

    Real part in bits 15:0, imaginary part in bits 31:16 -- the packing
    used on the DFT RAC's 32-bit FIFO interface.
    """
    if len(re) != len(im):
        raise ValueError("re/im length mismatch")
    return [((int(i) & 0xFFFF) << 16) | (int(r) & 0xFFFF)
            for r, i in zip(re, im)]


def interleave_complex(re: Sequence[int], im: Sequence[int]) -> List[int]:
    """Interleave (re, im) into separate sign-extended 32-bit words.

    Word ``2i`` holds ``re[i]``, word ``2i+1`` holds ``im[i]`` -- the
    transfer format of the DFT RAC (two words per complex point, which
    is what makes the paper's 256-point DFT move 1024 words total).
    """
    if len(re) != len(im):
        raise ValueError("re/im length mismatch")
    words: List[int] = []
    for r, i in zip(re, im):
        words.append(int(r) & 0xFFFFFFFF)
        words.append(int(i) & 0xFFFFFFFF)
    return words


def deinterleave_complex(words: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Inverse of :func:`interleave_complex` (values re-signed)."""
    if len(words) % 2:
        raise ValueError("interleaved stream must have even length")

    def resign(word: int) -> int:
        word &= 0xFFFFFFFF
        return word - (1 << 32) if word & (1 << 31) else word

    re = [resign(w) for w in words[0::2]]
    im = [resign(w) for w in words[1::2]]
    return re, im


def words_to_complex(words: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Inverse of :func:`complex_to_words`."""
    re: List[int] = []
    im: List[int] = []
    for word in words:
        r = word & 0xFFFF
        i = (word >> 16) & 0xFFFF
        re.append(r - (1 << 16) if r & 0x8000 else r)
        im.append(i - (1 << 16) if i & 0x8000 else i)
    return re, im
