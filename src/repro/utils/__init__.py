"""Shared helpers: bit manipulation and fixed-point arithmetic."""

from . import bits, fixedpoint

__all__ = ["bits", "fixedpoint"]
