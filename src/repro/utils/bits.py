"""Bit-twiddling helpers shared by the ISAs, buses and FIFOs.

All hardware-ish values in the simulator are plain Python ints constrained
to unsigned word ranges; these helpers centralize masking, field
extraction and two's-complement conversions so each component does not
reinvent them (subtly differently).
"""

from __future__ import annotations

from typing import Iterable, List

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1


def mask(bits: int) -> int:
    """All-ones mask of the given width."""
    if bits < 0:
        raise ValueError(f"negative width {bits}")
    return (1 << bits) - 1


def to_unsigned(value: int, bits: int = WORD_BITS) -> int:
    """Wrap a (possibly negative) int into an unsigned field."""
    return value & mask(bits)


def to_signed(value: int, bits: int = WORD_BITS) -> int:
    """Interpret an unsigned field as two's complement."""
    value &= mask(bits)
    sign_bit = 1 << (bits - 1)
    return value - (1 << bits) if value & sign_bit else value


def sign_extend(value: int, from_bits: int, to_bits: int = WORD_BITS) -> int:
    """Sign-extend ``value`` from ``from_bits`` to an unsigned ``to_bits``."""
    return to_unsigned(to_signed(value, from_bits), to_bits)


def get_field(word: int, hi: int, lo: int) -> int:
    """Extract bits ``[hi:lo]`` (inclusive, hi >= lo) from ``word``."""
    if hi < lo:
        raise ValueError(f"invalid field [{hi}:{lo}]")
    return (word >> lo) & mask(hi - lo + 1)


def set_field(word: int, hi: int, lo: int, value: int) -> int:
    """Return ``word`` with bits ``[hi:lo]`` replaced by ``value``.

    Raises ``ValueError`` if ``value`` does not fit the field.
    """
    width = hi - lo + 1
    if value < 0 or value > mask(width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    cleared = word & ~(mask(width) << lo)
    return cleared | (value << lo)


def fits_unsigned(value: int, bits: int) -> bool:
    return 0 <= value <= mask(bits)


def fits_signed(value: int, bits: int) -> bool:
    half = 1 << (bits - 1)
    return -half <= value < half


def pack_halfwords(lo: int, hi: int) -> int:
    """Pack two 16-bit fields into one 32-bit word (lo in bits 15:0)."""
    return (to_unsigned(hi, 16) << 16) | to_unsigned(lo, 16)


def unpack_halfwords(word: int) -> "tuple[int, int]":
    """Inverse of :func:`pack_halfwords`; returns signed (lo, hi)."""
    return to_signed(word & 0xFFFF, 16), to_signed((word >> 16) & 0xFFFF, 16)


def words_from_bytes(data: bytes) -> List[int]:
    """Little-endian byte string -> list of 32-bit words (zero padded)."""
    padded = data + b"\x00" * (-len(data) % 4)
    return [
        int.from_bytes(padded[i : i + 4], "little")
        for i in range(0, len(padded), 4)
    ]


def bytes_from_words(words: Iterable[int]) -> bytes:
    """List of 32-bit words -> little-endian byte string."""
    return b"".join(to_unsigned(w).to_bytes(4, "little") for w in words)


def popcount(value: int) -> int:
    return bin(value & WORD_MASK).count("1")


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """log2 of an exact power of two; raises ``ValueError`` otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return ((value + alignment - 1) // alignment) * alignment
