"""Bus protocol timing models.

The paper's architecture deliberately separates the bus-independent part
of the Ouessant interface from a per-bus adapter ("The system bus
interface ... must be implemented for each bus supported by Ouessant").
We mirror this with :class:`BusProtocol`: a timing model the
:class:`~repro.bus.bus.SystemBus` consults to charge cycles for each
transaction.  Swapping protocols changes only timing, never behaviour --
exactly the modularity the paper claims.

The catalogue covers the buses named in the paper's Figure 3 ("AHB, AXI,
PLB, ...") plus Wishbone, and distinguishes AXI4 (burst-capable, the
future-work Zynq port) from AXI4-Lite (single-beat, the naive port).

Timing model per burst chunk::

    arbitration + address_cycles + slave_latency + beats * cycles_per_beat

with back-to-back chunks of one logical transfer saving the arbitration
cycles when the protocol supports locked/pipelined transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.errors import ConfigurationError


@dataclass(frozen=True)
class BusProtocol:
    """Cycle-cost model of one bus protocol.

    Attributes
    ----------
    name:
        Human-readable protocol name.
    arbitration_cycles:
        Cycles to win the bus when it is idle.
    address_cycles:
        Address/handshake phase cycles per burst.
    cycles_per_beat:
        Data cycles per 32-bit beat once the burst is running.
    max_burst_beats:
        Longest legal burst; longer transfers are split into chunks.
    locked_chunks:
        True if consecutive chunks of one logical transfer keep bus
        ownership (no re-arbitration between chunks).
    bus_width_bits:
        Data bus width (all catalogued protocols are 32-bit here, as in
        the paper's AMBA2 system).
    """

    name: str
    arbitration_cycles: int
    address_cycles: int
    cycles_per_beat: int
    max_burst_beats: int
    locked_chunks: bool = True
    bus_width_bits: int = 32

    def __post_init__(self) -> None:
        if self.max_burst_beats < 1:
            raise ConfigurationError("max_burst_beats must be >= 1")
        if self.cycles_per_beat < 1:
            raise ConfigurationError("cycles_per_beat must be >= 1")

    def split_burst(self, total_beats: int) -> List[int]:
        """Split a logical transfer into protocol-legal chunk lengths."""
        if total_beats < 1:
            raise ValueError("burst must move at least one word")
        chunks = []
        remaining = total_beats
        while remaining > 0:
            take = min(remaining, self.max_burst_beats)
            chunks.append(take)
            remaining -= take
        return chunks

    def chunk_cycles(self, beats: int, slave_latency: int, first: bool) -> int:
        """Cycles consumed by one chunk of ``beats`` beats.

        ``first`` selects whether arbitration is charged (subsequent
        chunks of a locked transfer skip it).
        """
        cycles = self.address_cycles + slave_latency
        cycles += beats * self.cycles_per_beat
        if first or not self.locked_chunks:
            cycles += self.arbitration_cycles
        return cycles

    def transfer_cycles(self, total_beats: int, slave_latency: int = 0) -> int:
        """Total bus occupancy of one logical transfer of ``total_beats``.

        Closed form over the chunked model (the per-chunk sum is kept
        in :meth:`chunk_cycles`/:meth:`split_burst` and cross-checked
        by the protocol test suite): every chunk pays the address phase
        and the slave's first-beat latency, every beat pays its data
        cycles, and arbitration is paid once for a locked transfer or
        once per chunk otherwise.
        """
        if total_beats < 1:
            raise ValueError("burst must move at least one word")
        chunks = -(-total_beats // self.max_burst_beats)
        total = chunks * (self.address_cycles + slave_latency)
        total += total_beats * self.cycles_per_beat
        total += self.arbitration_cycles * (1 if self.locked_chunks else chunks)
        return total

    def transfer_cycles_chunked(
        self, total_beats: int, slave_latency: int = 0
    ) -> int:
        """Reference per-chunk summation (cross-check for the closed form)."""
        total = 0
        for index, beats in enumerate(self.split_burst(total_beats)):
            total += self.chunk_cycles(beats, slave_latency, first=index == 0)
        return total

    def cycles_per_word(self, total_beats: int, slave_latency: int = 0) -> float:
        """Amortized cycles per 32-bit word for a transfer."""
        return self.transfer_cycles(total_beats, slave_latency) / total_beats


# ---------------------------------------------------------------------------
# Protocol catalogue
# ---------------------------------------------------------------------------

#: AMBA2 AHB, the bus of the paper's Leon3 system.  Pipelined
#: address/data, one beat per cycle, INCR16 bursts, single-cycle grant.
AHB = BusProtocol(
    name="AHB",
    arbitration_cycles=1,
    address_cycles=1,
    cycles_per_beat=1,
    max_burst_beats=16,
)

#: AXI4 full -- the paper's future-work Zynq integration target.  Long
#: bursts (256 beats) amortize the heavier channel handshake.
AXI4 = BusProtocol(
    name="AXI4",
    arbitration_cycles=1,
    address_cycles=2,
    cycles_per_beat=1,
    max_burst_beats=256,
)

#: AXI4-Lite -- no bursts; every word pays the full handshake.  Included
#: to show why a burst-capable adapter matters on Zynq.
AXI4_LITE = BusProtocol(
    name="AXI4-Lite",
    arbitration_cycles=1,
    address_cycles=2,
    cycles_per_beat=1,
    max_burst_beats=1,
    locked_chunks=False,
)

#: Wishbone classic cycle: two cycles per beat (strobe + ack).
WISHBONE = BusProtocol(
    name="Wishbone",
    arbitration_cycles=1,
    address_cycles=0,
    cycles_per_beat=2,
    max_burst_beats=64,
)

#: Wishbone with registered-feedback burst cycles (B4 spec): one beat
#: per cycle after a two-cycle setup.
WISHBONE_B4 = BusProtocol(
    name="Wishbone-B4",
    arbitration_cycles=1,
    address_cycles=2,
    cycles_per_beat=1,
    max_burst_beats=64,
)

#: IBM CoreConnect PLB (named in the paper's Figure 3).
PLB = BusProtocol(
    name="PLB",
    arbitration_cycles=2,
    address_cycles=1,
    cycles_per_beat=1,
    max_burst_beats=16,
)

ALL_PROTOCOLS = [AHB, AXI4, AXI4_LITE, WISHBONE, WISHBONE_B4, PLB]


def protocol_by_name(name: str) -> BusProtocol:
    """Look up a catalogued protocol by (case-insensitive) name."""
    for protocol in ALL_PROTOCOLS:
        if protocol.name.lower() == name.lower():
            return protocol
    known = ", ".join(p.name for p in ALL_PROTOCOLS)
    raise KeyError(f"unknown bus protocol {name!r} (known: {known})")
