"""Bus arbitration policies.

The bus keeps a queue of pending :class:`~repro.bus.types.BusTransfer`
objects; whenever it goes idle it asks its arbiter to pick the next one.
Two classic policies are provided -- fixed priority (the AMBA2 default
used in the paper's Leon3 system) and round robin.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .types import BusTransfer


class Arbiter:
    """Arbitration policy interface."""

    name = "abstract"

    def pick(self, pending: List[BusTransfer]) -> BusTransfer:
        """Choose one of the pending transfers (list is non-empty)."""
        raise NotImplementedError


class FixedPriorityArbiter(Arbiter):
    """Lowest ``priority`` value wins; ties broken by submission order."""

    name = "fixed-priority"

    def pick(self, pending: List[BusTransfer]) -> BusTransfer:
        return min(
            pending,
            key=lambda t: (t.request.priority, t.issue_cycle),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FixedPriorityArbiter>"


class RoundRobinArbiter(Arbiter):
    """Rotate fairness among master names.

    The master that was granted most recently becomes the lowest
    priority for the next grant.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._last_grant: Optional[str] = None
        self._order: List[str] = []

    def _rank(self, master: str) -> int:
        if master not in self._order:
            self._order.append(master)
        rank = self._order.index(master)
        if self._last_grant is not None and self._last_grant in self._order:
            pivot = self._order.index(self._last_grant)
            rank = (rank - pivot - 1) % len(self._order)
        return rank

    def pick(self, pending: List[BusTransfer]) -> BusTransfer:
        choice = min(
            pending,
            key=lambda t: (self._rank(t.request.master), t.issue_cycle),
        )
        self._last_grant = choice.request.master
        return choice

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RoundRobinArbiter last={self._last_grant!r}>"
