"""The system bus component.

:class:`SystemBus` is the spine of the simulated SoC: every master
(CPU, Ouessant master engine, DMA peripheral) submits
:class:`~repro.bus.types.BusRequest` objects, the arbiter picks among
pending transfers whenever the bus is idle, and the selected protocol's
timing model decides how many cycles the transfer occupies.

Data movement happens atomically at completion time -- the words of a
read burst appear in the transfer handle on the cycle the burst would
have delivered its last beat on real hardware.  This keeps the model
simple while preserving end-to-end cycle counts (what the paper
measures).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.errors import BusError, BusFaultError
from ..sim.kernel import Component
from ..sim.tracing import Stats
from .arbiter import Arbiter, FixedPriorityArbiter
from .memmap import MemoryMap, Region
from .protocol import AHB, BusProtocol
from .types import AccessKind, BusRequest, BusSlave, BusTransfer


class SystemBus(Component):
    """Cycle-accounted shared bus with pluggable protocol and arbiter.

    Parameters
    ----------
    protocol:
        Timing model (default: AMBA2 AHB, as in the paper's Leon3 SoC).
    arbiter:
        Arbitration policy (default: fixed priority, the AMBA2 scheme).
    """

    def __init__(
        self,
        name: str = "bus",
        protocol: BusProtocol = AHB,
        arbiter: Optional[Arbiter] = None,
    ) -> None:
        super().__init__(name)
        self.protocol = protocol
        self.arbiter = arbiter or FixedPriorityArbiter()
        self.memmap = MemoryMap()
        self.stats = Stats()
        self._pending: List[BusTransfer] = []
        self._current: Optional[BusTransfer] = None
        self._busy_until = 0

    # -- topology ------------------------------------------------------
    def attach_slave(
        self, slave_name: str, base: int, size: int, slave: BusSlave
    ) -> Region:
        """Map a slave into the address space."""
        return self.memmap.add(slave_name, base, size, slave)

    # -- master API ------------------------------------------------------
    def submit(
        self, request: BusRequest, waiter: Optional[Component] = None
    ) -> BusTransfer:
        """Queue a transaction; returns its completion handle.

        The address span is validated eagerly so that software bugs
        (unmapped banks, bursts running off the end of a region) surface
        at the submitting instruction, like a bus error would.  The
        decode result is cached on the handle so the grant and the data
        movement skip the memory-map walk.  ``waiter``, if given, is
        poked when the transfer completes (vectorized dispatch).
        """
        route = self.memmap.lookup(request.address, span_bytes=4 * request.burst)
        transfer = BusTransfer(
            request=request, issue_cycle=self.now, waiter=waiter, route=route
        )
        self._pending.append(transfer)
        self.stats.incr("requests")
        self.stats.incr(f"requests.{request.master}")
        # a new request makes the bus due (grant) this very cycle if
        # idle -- drop its cached quiescence claim
        self.poke()
        return transfer

    # -- zero-time debug access -------------------------------------------
    def read_now(self, address: int, count: int = 1) -> List[int]:
        """Backdoor read (no cycles charged).  For tests and loaders."""
        region, offset = self.memmap.lookup(address, span_bytes=4 * count)
        return region.slave.read_burst(offset, count)

    def write_now(self, address: int, values: List[int]) -> None:
        """Backdoor write (no cycles charged).  For tests and loaders."""
        region, offset = self.memmap.lookup(address, span_bytes=4 * len(values))
        region.slave.write_burst(offset, list(values))

    # -- clocked behaviour --------------------------------------------------
    def reset(self) -> None:
        self._pending.clear()
        self._current = None
        self._busy_until = 0
        self.stats = Stats()

    def tick(self) -> None:
        if self._current is not None:
            self.stats.incr("busy_cycles")
            if self.now >= self._busy_until:
                self._finish(self._current)
                self._current = None
        if self._current is None and self._pending:
            self._grant(self.arbiter.pick(self._pending))

    def next_activity(self):
        # an in-flight transfer occupies the bus until _busy_until; the
        # intervening ticks only count busy cycles (reconciled in
        # on_skip), so the completion cycle is the next real work
        if self._current is not None:
            return max(self._busy_until, self.now)
        if self._pending:
            return self.now  # a grant is due this cycle
        return None  # idle until a master submits a request

    def on_skip(self, cycles: int) -> None:
        if self._current is not None:
            self.stats.incr("busy_cycles", cycles)

    # -- internals -----------------------------------------------------------
    def _grant(self, transfer: BusTransfer) -> None:
        self._pending.remove(transfer)
        request = transfer.request
        if transfer.route is not None:
            region, offset = transfer.route
        else:
            region, offset = self.memmap.lookup(
                request.address, span_bytes=4 * request.burst
            )
        latency_for = getattr(region.slave, "latency_for", None)
        if latency_for is not None:
            # address-aware slaves (e.g. SDRAM open-row model) charge
            # a latency that depends on where the burst lands
            latency = latency_for(offset, request.burst)
        else:
            latency = region.slave.access_latency
        occupancy = self.protocol.transfer_cycles(request.burst, latency)
        transfer.grant_cycle = self.now
        self._busy_until = self.now + occupancy
        self._current = transfer
        self.stats.incr("grants")
        self.stats.incr("beats", request.burst)
        self.stats.incr(f"beats.{request.master}", request.burst)
        self.trace_event(
            "grant",
            master=request.master,
            kind=request.kind.value,
            address=hex(request.address),
            burst=request.burst,
            occupancy=occupancy,
        )

    def _finish(self, transfer: BusTransfer) -> None:
        request = transfer.request
        if transfer.route is not None:
            region, offset = transfer.route
        else:
            region, offset = self.memmap.lookup(
                request.address, span_bytes=4 * request.burst
            )
        waiter = transfer.waiter
        if waiter is not None:
            # completion unblocks the master: re-poll its quiescence
            waiter.poke()
        elif self.sim is not None:
            # unknown master (raw submit): conservatively re-poll
            # everyone rather than risk a stale quiescence claim
            for comp in self.sim._components:
                comp._wake_valid = False
        try:
            if request.kind is AccessKind.READ:
                transfer.data = region.slave.read_burst(offset, request.burst)
                if len(transfer.data) != request.burst:
                    raise BusError(
                        f"slave {region.name!r} returned "
                        f"{len(transfer.data)} words for a "
                        f"{request.burst}-beat read"
                    )
            else:
                region.slave.write_burst(offset, list(request.data or []))
        except BusFaultError as exc:
            # ERROR response: the transfer terminates, the master must
            # check the handle -- the rest of the SoC keeps running.
            transfer.error = True
            transfer.error_reason = str(exc)
            if request.kind is AccessKind.READ:
                transfer.data = [0] * request.burst
            transfer.complete(self.now)
            self.stats.incr("slave_errors")
            self.trace_event(
                "slave_error",
                master=request.master,
                kind=request.kind.value,
                address=hex(request.address),
                reason=str(exc),
            )
            return
        transfer.complete(self.now)
        self.trace_event(
            "complete",
            master=request.master,
            kind=request.kind.value,
            address=hex(request.address),
            latency=transfer.latency,
        )

    # -- introspection ----------------------------------------------------
    @property
    def idle(self) -> bool:
        return self._current is None and not self._pending

    @property
    def pending_count(self) -> int:
        return len(self._pending) + (1 if self._current else 0)

    def utilization(self) -> float:
        """Fraction of elapsed cycles the bus was occupied."""
        if self.now == 0:
            return 0.0
        return self.stats.get("busy_cycles") / self.now
