"""Interrupt lines.

The Ouessant interface raises a GPP interrupt when the ``IE`` control
bit is set and the program executes ``eop`` (Figure 3's "GPP interrupt"
signal).  :class:`IRQLine` models a level-sensitive line: the source
raises it, the handler acknowledges it.  :class:`IRQController` fans
multiple lines into the CPU with fixed priorities.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class IRQLine:
    """One level-sensitive interrupt line."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._pending = False
        self.raise_count = 0
        #: components whose quiescence claim depends on this line
        #: (CPU in WFI, scheduler slots); poked on every edge
        self._watchers: List[object] = []

    def watch(self, component: object) -> None:
        """Poke ``component`` (wake-cache invalidation) on line edges."""
        if component not in self._watchers:
            self._watchers.append(component)

    def _notify(self) -> None:
        for watcher in self._watchers:
            watcher.poke()

    @property
    def pending(self) -> bool:
        return self._pending

    def assert_(self) -> None:
        """Drive the line high (idempotent)."""
        if not self._pending:
            self.raise_count += 1
        self._pending = True
        self._notify()

    def clear(self) -> None:
        """Acknowledge: drive the line low."""
        self._pending = False
        self._notify()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._pending else "idle"
        return f"<IRQLine {self.name} {state}>"


class IRQController:
    """Fixed-priority interrupt controller (smaller index wins)."""

    def __init__(self) -> None:
        self._lines: List[IRQLine] = []
        self._watchers: List[object] = []

    def watch(self, component: object) -> None:
        """Watch every line, present and future (e.g. a WFI'd CPU)."""
        if component not in self._watchers:
            self._watchers.append(component)
        for line in self._lines:
            line.watch(component)

    def register(self, line: IRQLine) -> int:
        """Attach a line; returns its interrupt number."""
        self._lines.append(line)
        for watcher in self._watchers:
            line.watch(watcher)
        return len(self._lines) - 1

    def line(self, number: int) -> IRQLine:
        return self._lines[number]

    @property
    def lines(self) -> List[IRQLine]:
        return list(self._lines)

    def highest_pending(self) -> Optional[int]:
        """Number of the highest-priority pending line, or ``None``."""
        for number, line in enumerate(self._lines):
            if line.pending:
                return number
        return None

    def any_pending(self) -> bool:
        return self.highest_pending() is not None

    def snapshot(self) -> Dict[str, bool]:
        return {line.name: line.pending for line in self._lines}
