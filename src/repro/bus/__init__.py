"""System interconnect: bus, protocols, arbitration, memory map, IRQs."""

from .arbiter import Arbiter, FixedPriorityArbiter, RoundRobinArbiter
from .bus import SystemBus
from .irq import IRQController, IRQLine
from .memmap import MemoryMap, Region
from .protocol import (
    AHB,
    ALL_PROTOCOLS,
    AXI4,
    AXI4_LITE,
    PLB,
    WISHBONE,
    WISHBONE_B4,
    BusProtocol,
    protocol_by_name,
)
from .types import AccessKind, BusRequest, BusSlave, BusTransfer

__all__ = [
    "AHB",
    "ALL_PROTOCOLS",
    "AXI4",
    "AXI4_LITE",
    "AccessKind",
    "Arbiter",
    "BusProtocol",
    "BusRequest",
    "BusSlave",
    "BusTransfer",
    "FixedPriorityArbiter",
    "IRQController",
    "IRQLine",
    "MemoryMap",
    "PLB",
    "Region",
    "RoundRobinArbiter",
    "SystemBus",
    "WISHBONE",
    "WISHBONE_B4",
    "protocol_by_name",
]
