"""Bus transaction types shared by masters, slaves and the bus itself.

The reproduction models the system interconnect at *transaction level
with cycle accounting*: a master submits a :class:`BusRequest` (single
word or burst), the bus arbitrates, charges the protocol-defined number
of cycles, performs the data movement against the selected slave, and
completes the associated :class:`BusTransfer` handle.  This is the
standard fidelity used by architecture simulators and is sufficient to
reproduce the paper's transfer-efficiency numbers (cycles per word,
burst behaviour) without modelling individual bus wires.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class AccessKind(enum.Enum):
    """Direction of a bus transaction, as seen from the master."""

    READ = "read"
    WRITE = "write"


@dataclass
class BusRequest:
    """A master's wish: move ``burst`` words starting at ``address``.

    ``address`` is a byte address and must be word aligned.  For writes,
    ``data`` must hold exactly ``burst`` 32-bit words.  ``priority`` only
    matters under the fixed-priority arbiter (lower value wins).
    """

    master: str
    kind: AccessKind
    address: int
    burst: int = 1
    data: Optional[List[int]] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.address % 4 != 0:
            raise ValueError(f"unaligned bus address {self.address:#x}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.kind is AccessKind.WRITE:
            if self.data is None or len(self.data) != self.burst:
                raise ValueError(
                    "write request needs exactly `burst` data words"
                )
        elif self.data is not None:
            raise ValueError("read request must not carry data")


@dataclass
class BusTransfer:
    """Completion handle returned by :meth:`SystemBus.submit`.

    Attributes
    ----------
    done:
        True once the transaction has fully completed on the bus.
    data:
        For reads, the words read (filled at completion).
    issue_cycle / complete_cycle:
        Cycle accounting for latency measurements.
    error:
        The slave terminated the transfer with an ERROR response
        (AMBA-style).  The transfer still counts as ``done`` -- masters
        must check ``error`` before trusting ``data``.
    """

    request: BusRequest
    issue_cycle: int
    done: bool = False
    data: List[int] = field(default_factory=list)
    grant_cycle: Optional[int] = None
    complete_cycle: Optional[int] = None
    on_complete: Optional[Callable[["BusTransfer"], None]] = None
    #: the slave answered with an ERROR response; ``data`` is garbage
    error: bool = False
    error_reason: Optional[str] = None
    #: component blocked on this transfer; the bus pokes it (wake-cache
    #: invalidation for vectorized dispatch) when the transfer finishes
    waiter: Optional[object] = None
    #: decode result cached at submit so grant/data beats skip the
    #: memory-map walk: (slave, byte offset of ``address`` in its region)
    route: Optional[tuple] = None

    @property
    def latency(self) -> int:
        """Cycles from submission to completion (valid once done)."""
        if self.complete_cycle is None:
            raise RuntimeError("transfer not complete")
        return self.complete_cycle - self.issue_cycle

    def complete(self, cycle: int) -> None:
        self.done = True
        self.complete_cycle = cycle
        if self.on_complete is not None:
            self.on_complete(self)


class BusSlave:
    """Interface every bus-attached peripheral implements.

    Addresses passed to the access methods are *byte offsets within the
    slave's mapped region* (the bus performs the subtraction), always
    word aligned.  ``access_latency`` is the extra wait-state count the
    slave inserts on the first beat of a burst.
    """

    access_latency: int = 0

    def read_word(self, offset: int) -> int:
        raise NotImplementedError

    def write_word(self, offset: int, value: int) -> None:
        raise NotImplementedError

    def read_burst(self, offset: int, count: int) -> List[int]:
        return [self.read_word(offset + 4 * i) for i in range(count)]

    def write_burst(self, offset: int, values: List[int]) -> None:
        for i, value in enumerate(values):
            self.write_word(offset + 4 * i, value)
