"""System address map.

A :class:`MemoryMap` maps absolute byte addresses to slave peripherals.
Regions must be word aligned and non-overlapping; lookups return the
region plus the offset inside it, which the bus passes to the slave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.errors import AddressError, ConfigurationError
from .types import BusSlave


@dataclass(frozen=True)
class Region:
    """One decoded window of the address space."""

    name: str
    base: int
    size: int
    slave: BusSlave

    @property
    def end(self) -> int:
        """First byte address *after* the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end

    def __str__(self) -> str:
        return f"{self.name}: [{self.base:#010x}, {self.end:#010x})"


class MemoryMap:
    """Ordered, overlap-checked collection of :class:`Region`."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def add(self, name: str, base: int, size: int, slave: BusSlave) -> Region:
        """Register a slave window; returns the created region."""
        if base % 4 != 0 or size % 4 != 0:
            raise ConfigurationError(
                f"region {name!r} must be word aligned "
                f"(base={base:#x}, size={size:#x})"
            )
        if size <= 0:
            raise ConfigurationError(f"region {name!r} has size {size}")
        region = Region(name, base, size, slave)
        for existing in self._regions:
            if region.overlaps(existing):
                raise ConfigurationError(
                    f"region {region} overlaps {existing}"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    def replace_slave(self, name: str, slave: BusSlave) -> Region:
        """Swap the slave behind a mapped window (same base and size).

        The interposition point for wrapper slaves (e.g. fault
        injectors): the address decode is untouched, only the endpoint
        changes.  Returns the new region.
        """
        for index, region in enumerate(self._regions):
            if region.name == name:
                replacement = Region(region.name, region.base,
                                     region.size, slave)
                self._regions[index] = replacement
                return replacement
        raise ConfigurationError(f"no region named {name!r} to replace")

    def find(self, address: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def span_from(self, address: int) -> Optional[int]:
        """Bytes from ``address`` to the end of its region.

        ``None`` when no slave decodes ``address``.  Static analyzers
        use this to bound how far a burst starting at ``address`` may
        run before falling off the mapped window.
        """
        region = self.find(address)
        if region is None:
            return None
        return region.end - address

    def lookup(self, address: int, span_bytes: int = 4) -> Tuple[Region, int]:
        """Resolve an access; the whole span must fit in one region.

        Returns ``(region, byte_offset_within_region)``.
        """
        region = self.find(address)
        if region is None:
            raise AddressError(f"no slave decodes address {address:#010x}")
        if address + span_bytes > region.end:
            raise AddressError(
                f"access [{address:#x}+{span_bytes}] crosses the end of "
                f"region {region}"
            )
        return region, address - region.base

    def render(self) -> str:
        """Human-readable memory map listing."""
        return "\n".join(str(r) for r in self._regions)
