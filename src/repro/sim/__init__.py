"""Simulation kernel: clock, components, tracing, errors."""

from .errors import (
    AddressError,
    AssemblerError,
    BusError,
    BusFaultError,
    ConfigurationError,
    ControllerError,
    DeadlockError,
    DriverError,
    DriverTimeout,
    EncodingError,
    FIFOError,
    MemoryError_,
    OcpRunError,
    RACError,
    ReconfigurationError,
    ReproError,
    SimulationError,
)
from .kernel import Component, ComponentProfile, SimProfile, Simulator
from .tracing import Stats, Trace, TraceEvent, VCDWriter
from .waveform import WaveformProbe, ocp_probe

__all__ = [
    "AddressError",
    "AssemblerError",
    "BusError",
    "BusFaultError",
    "Component",
    "ConfigurationError",
    "ControllerError",
    "DeadlockError",
    "DriverError",
    "DriverTimeout",
    "EncodingError",
    "FIFOError",
    "MemoryError_",
    "OcpRunError",
    "RACError",
    "ReconfigurationError",
    "ReproError",
    "SimulationError",
    "Simulator",
    "Stats",
    "Trace",
    "TraceEvent",
    "VCDWriter",
    "WaveformProbe",
    "ocp_probe",
]
