"""Exception hierarchy for the Ouessant reproduction.

Every error raised by the package derives from :class:`ReproError` so that
applications can catch simulation problems without masking programming
errors (``TypeError`` and friends are never wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Generic runtime error inside the simulation kernel."""


class DeadlockError(SimulationError):
    """The simulation reached its cycle limit without meeting a condition.

    Raised by :meth:`repro.sim.kernel.Simulator.run_until` when the
    predicate never becomes true. Usually indicates a hardware-level
    deadlock (e.g. a FIFO producer and consumer waiting on each other).
    """


class BusError(ReproError):
    """Illegal bus activity (unmapped address, bad burst, overlap)."""


class AddressError(BusError):
    """Access to an address that no slave decodes."""


class BusFaultError(BusError):
    """A slave signalled an ERROR response on the bus.

    Raised by a slave's access method (typically a fault injector) to
    model the AMBA ERROR response.  The bus converts it into an errored
    :class:`~repro.bus.types.BusTransfer` instead of crashing the
    simulation, so masters can observe and recover from it.
    """


class MemoryError_(ReproError):
    """Out-of-range or misaligned memory access.

    Named with a trailing underscore to avoid shadowing the builtin
    ``MemoryError``.
    """


class AssemblerError(ReproError):
    """Syntax or semantic error while assembling a program.

    Attributes
    ----------
    line:
        1-based source line number where the error occurred, or ``None``
        when the error is not tied to a specific line.
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """A field value does not fit its instruction encoding slot."""


class ControllerError(ReproError):
    """The Ouessant controller hit an illegal state.

    Examples: executing an undefined opcode, referencing an unconfigured
    memory bank, or addressing a FIFO that the attached RAC does not
    provide.
    """


class RACError(ReproError):
    """An accelerator (RAC) was misused or misconfigured."""


class FIFOError(RACError):
    """Illegal FIFO operation (push when full / pop when empty)."""


class DriverError(ReproError):
    """Software-stack misuse (bad bank setup, run before load, ...)."""


class DriverTimeout(DriverError):
    """The driver gave up waiting for the OCP to finish a run."""


class OcpRunError(DriverError):
    """The OCP completed a run with its error bit set.

    Attributes
    ----------
    code:
        The 4-bit error code from the control register (see
        :mod:`repro.core.registers`), or ``None`` when unknown.
    """

    def __init__(self, message: str, code: "int | None" = None) -> None:
        self.code = code
        super().__init__(message)


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class ReconfigurationError(ReproError):
    """Dynamic partial reconfiguration was attempted in an illegal state."""
