"""Waveform probing: sample simulation state into a VCD.

The original project was debugged in RTL simulation; the equivalent
workflow here is a :class:`WaveformProbe` that samples chosen signals
(any zero-argument callables returning ints) every cycle and emits a
value-change dump viewable in GTKWave.

Example::

    vcd = VCDWriter(timescale="20ns")   # 50 MHz
    probe = WaveformProbe("probe", vcd, {
        "ctrl_state": lambda: hash(ocp.controller.state) & 0xF,
        "fifo_in_level": lambda: ocp.fifos_in[0].occupancy,
        "irq": lambda: int(ocp.irq.pending),
    })
    sim.add(probe)
    ...
    vcd.write("run.vcd")
"""

from __future__ import annotations

from typing import Callable, Dict

from .kernel import Component
from .tracing import VCDWriter

Signal = Callable[[], int]


class WaveformProbe(Component):
    """Samples named signals into a :class:`VCDWriter` every cycle."""

    #: a probe samples every cycle: its presence forces the simulator
    #: off the vectorized dispatch table (and, via next_activity below,
    #: disables idle skipping entirely)
    requires_full_dispatch = True

    def __init__(
        self,
        name: str,
        vcd: VCDWriter,
        signals: Dict[str, Signal],
        width_hint: int = 8,
    ) -> None:
        super().__init__(name)
        self.vcd = vcd
        self.signals = dict(signals)
        for signal_name in self.signals:
            vcd.register(signal_name, width=width_hint)
        self.samples = 0

    def next_activity(self):
        # a probe must observe every cycle: registering one disables
        # idle skipping for the whole simulator, which is exactly what
        # a waveform capture wants (no gaps in the dump)
        return self.now

    def tick(self) -> None:
        for signal_name, fn in self.signals.items():
            self.vcd.change(self.now, signal_name, int(fn()))
        self.samples += 1


def ocp_probe(name: str, vcd: VCDWriter, ocp) -> WaveformProbe:
    """Standard probe set for one coprocessor.

    Captures the controller FSM (as a small enum code), the first
    input/output FIFO levels, the busy/done handshake and the IRQ line
    -- the signals one watches when bringing up an OCP.
    """
    state_codes = {
        "idle": 0, "prefetch": 1, "fetch": 2, "decode": 3,
        "xfer_to": 4, "xfer_from": 5, "exec_wait": 6, "waiting": 7,
        "waitf": 8, "halted": 9,
    }
    signals: Dict[str, Signal] = {
        "ctrl_state": lambda: state_codes.get(ocp.controller.state, 15),
        "irq": lambda: int(ocp.irq.pending),
        "done": lambda: int(ocp.done),
    }
    if ocp.fifos_in:
        fifo_in = ocp.fifos_in[0]
        signals["fifo_in_level"] = lambda: fifo_in.occupancy
    if ocp.fifos_out:
        fifo_out = ocp.fifos_out[0]
        signals["fifo_out_level"] = lambda: fifo_out.occupancy
    if ocp.rac is not None:
        rac = ocp.rac
        signals["rac_end_op"] = lambda: int(rac.end_op)
    return WaveformProbe(name, vcd, signals)
