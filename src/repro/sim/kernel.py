"""Cycle-driven simulation kernel.

The whole reproduction is built on a deliberately simple execution model:
a :class:`Simulator` owns a set of :class:`Component` objects and advances
a global clock one cycle at a time.  On every cycle each component's
:meth:`Component.tick` is called once, in registration order, followed by
:meth:`Component.commit` in the same order.

The two-phase scheme gives registered (flip-flop like) semantics where it
matters: a component computes its next state in ``tick`` using only the
*current* outputs of other components, then publishes it in ``commit``.
Components that do not need the distinction can do all their work in
``tick`` and ignore ``commit``.

This is not an event-driven HDL simulator -- it is the standard
cycle-approximate style used by architecture simulators, which is the
right fidelity level for reproducing the paper's cycle counts (bus beats,
FIFO occupancy, controller FSM states) without modelling individual
wires.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .errors import DeadlockError, SimulationError
from .tracing import Trace


class Component:
    """Base class for everything that lives on the simulated clock.

    Subclasses override :meth:`tick` (compute phase) and optionally
    :meth:`commit` (publish phase) and :meth:`reset`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional["Simulator"] = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Called by the simulator when the component is registered."""
        self.sim = sim

    def reset(self) -> None:
        """Return the component to its power-on state."""

    # -- per-cycle hooks ----------------------------------------------
    def tick(self) -> None:
        """Compute phase: runs once per cycle before any commit."""

    def commit(self) -> None:
        """Publish phase: runs once per cycle after every tick."""

    # -- helpers -------------------------------------------------------
    @property
    def now(self) -> int:
        """Current cycle number (0 before the first step)."""
        return self.sim.cycle if self.sim is not None else 0

    def trace_event(self, event: str, **data: object) -> None:
        """Record an event in the simulator trace, if tracing is on."""
        if self.sim is not None:
            # remembered even without a trace: names the most recently
            # active component in deadlock diagnostics
            self.sim.last_active = self.name
            if self.sim.trace is not None:
                self.sim.trace.record(self.sim.cycle, self.name, event, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class Simulator:
    """Owns the clock and the component list.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.tracing.Trace` collecting events.
    """

    def __init__(self, trace: Optional[Trace] = None) -> None:
        self.cycle = 0
        self.trace = trace
        #: name of the component that most recently emitted an event
        self.last_active: Optional[str] = None
        self._components: List[Component] = []
        self._names = set()

    # -- registration ----------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._names:
            raise SimulationError(
                f"duplicate component name {component.name!r}"
            )
        self._names.add(component.name)
        self._components.append(component)
        component.attach(self)
        return component

    def add_all(self, components: Iterable[Component]) -> None:
        for component in components:
            self.add(component)

    def remove(self, component: Component) -> None:
        """Unregister a component (used by partial reconfiguration)."""
        self._components.remove(component)
        self._names.discard(component.name)
        component.sim = None

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    def component(self, name: str) -> Component:
        for comp in self._components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    # -- execution ---------------------------------------------------------
    def reset(self) -> None:
        """Reset the clock and every component."""
        self.cycle = 0
        for comp in self._components:
            comp.reset()

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` cycles."""
        for _ in range(cycles):
            for comp in self._components:
                comp.tick()
            for comp in self._components:
                comp.commit()
            self.cycle += 1

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        what: str = "condition",
    ) -> int:
        """Step until ``predicate()`` is true; return elapsed cycles.

        Raises
        ------
        DeadlockError
            If the predicate is still false after ``max_cycles`` steps.
        """
        start = self.cycle
        while not predicate():
            if self.cycle - start >= max_cycles:
                last = self.last_active or "<none>"
                raise DeadlockError(
                    f"{what} not reached within {max_cycles} cycles "
                    f"(stuck at cycle {self.cycle}, last active "
                    f"component: {last})"
                )
            self.step()
        return self.cycle - start
