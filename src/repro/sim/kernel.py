"""Cycle-driven simulation kernel.

The whole reproduction is built on a deliberately simple execution model:
a :class:`Simulator` owns a set of :class:`Component` objects and advances
a global clock one cycle at a time.  On every cycle each component's
:meth:`Component.tick` is called once, in registration order, followed by
:meth:`Component.commit` in the same order.

The two-phase scheme gives registered (flip-flop like) semantics where it
matters: a component computes its next state in ``tick`` using only the
*current* outputs of other components, then publishes it in ``commit``.
Components that do not need the distinction can do all their work in
``tick`` and ignore ``commit``.

This is not an event-driven HDL simulator -- it is the standard
cycle-approximate style used by architecture simulators, which is the
right fidelity level for reproducing the paper's cycle counts (bus beats,
FIFO occupancy, controller FSM states) without modelling individual
wires.

Idle skipping
-------------

Long waits dominate many workloads (a DFT's ``exec_wait``, SDRAM
latency, driver backoff windows): every component is stalled, yet the
naive stepper still pays two Python calls per component per cycle.
Components may therefore declare *quiescence* through
:meth:`Component.next_activity`: "my ``tick``/``commit`` are observable
no-ops until cycle N (or until another component acts)".  When every
registered component is quiescent, :meth:`Simulator.step` and
:meth:`Simulator.run_until` fast-forward the clock to the earliest
declared wake-up instead of ticking through the gap, giving each
component the chance to reconcile its internal cycle counters via
:meth:`Component.on_skip` so statistics stay bit-identical with the
naive schedule.

The protocol and its correctness rules are documented in
``docs/SIMULATION.md``; ``Simulator(strict=True)`` cross-checks every
declared-idle window by running the naive stepper through it and
asserting that nothing observable happened.

Vectorized dispatch
-------------------

Idle skipping only helps when *every* component is quiescent.  On
transfer-heavy workloads one component (a streaming RAC, the bus) is
live nearly every cycle, and the naive schedule still pays two Python
calls per *quiescent* component per cycle.  ``Simulator(vectorized=
True)`` (the default) adds a dispatch-table fast path: each
component's ``next_activity()`` answer is cached and only invalidated
when the component itself acts or another component *pokes* it
(:meth:`Component.poke`, FIFO/IRQ/bus wake wiring), so an executed
cycle touches only the components that are actually due.  Per-cycle
skip reconciliation is deferred: a quiescent component's
:meth:`Component.on_skip` runs lazily, just before its next real tick
(or at the public ``step``/``run_until`` boundary), covering exactly
the cycles it sat out.

On top of the dispatch table, *hot mode* (vectorized dispatch with no
trace attached) lets a component that is the only one due fast-forward
through a run of consecutive ticks in one host call
(:meth:`Component.tick_batch`) -- the FIFO slab transfers used by
streaming accelerators.  Both paths are bit-exact against the naive
schedule; the equivalence suite in ``tests/test_idle_skip.py`` gates
naive vs idle-skip vs vectorized on clean and fault-injected seeds.

Components that must observe every cycle (waveform probes, fault
injectors) set :attr:`Component.requires_full_dispatch`; registering
one forces the whole simulator back onto the audited idle-skip path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .errors import DeadlockError, SimulationError
from .tracing import Trace


class Component:
    """Base class for everything that lives on the simulated clock.

    Subclasses override :meth:`tick` (compute phase) and optionally
    :meth:`commit` (publish phase) and :meth:`reset`.  Components that
    can stall override :meth:`next_activity` (and, when they keep
    per-cycle counters, :meth:`on_skip`) to take part in idle skipping.
    """

    #: set True on components whose mere presence must disable the
    #: vectorized dispatch table (waveform probes sample every cycle,
    #: fault injectors perturb other components mid-window); the
    #: simulator then falls back to the audited idle-skip path
    requires_full_dispatch = False

    #: True on components implementing :meth:`tick_batch`
    can_batch = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional["Simulator"] = None
        self._detached = False
        #: components whose quiescence claim depends on this one's
        #: state; poked (wake-cache invalidated) whenever it changes
        self._watchers: List["Component"] = []
        # vectorized-dispatch bookkeeping (owned by the Simulator):
        # cached next_activity() answer, its validity, the first cycle
        # whose tick/on_skip has not been accounted yet, and the cycle
        # of the last real tick (commit-phase membership marker)
        self._wake: Optional[int] = None
        self._wake_valid = False
        self._synced = 0
        self._ran_at = -1

    # -- lifecycle -----------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Called by the simulator when the component is registered."""
        self.sim = sim
        self._detached = False

    def detach(self) -> None:
        """Called by the simulator when the component is removed."""
        self.sim = None
        self._detached = True

    def reset(self) -> None:
        """Return the component to its power-on state."""

    # -- per-cycle hooks ----------------------------------------------
    def tick(self) -> None:
        """Compute phase: runs once per cycle before any commit."""

    def commit(self) -> None:
        """Publish phase: runs once per cycle after every tick."""

    # -- quiescence protocol ------------------------------------------
    def next_activity(self) -> Optional[int]:
        """Earliest future cycle at which this component must tick.

        Return values (see ``docs/SIMULATION.md`` for the full
        contract):

        * any cycle ``<= self.now`` -- *active*: the component needs
          its tick this cycle; no skipping may happen.
        * a cycle ``N > self.now`` -- quiescent until ``N``: every
          tick/commit strictly before ``N`` is an observable no-op
          (no trace events, no cross-component effects) provided no
          *other* component acts either.
        * ``None`` -- indefinitely idle: only an external poke (another
          component's activity, a register write between steps) can
          make its ticks matter again.

        The base implementation returns ``self.now`` (always active),
        which is the safe default for components the kernel knows
        nothing about.
        """
        return self.now

    def on_skip(self, cycles: int) -> None:
        """Reconcile internal per-cycle counters after a skipped gap.

        Called with the number of fast-forwarded cycles whenever the
        simulator jumps over a window this component declared idle.
        Implementations must apply exactly the state changes ``cycles``
        consecutive no-op ticks would have applied (stat counters,
        wait-timer decrements) -- nothing observable.
        """

    def tick_batch(self, budget: int) -> int:
        """Execute up to ``budget`` consecutive ticks in one host call.

        Hot-mode hook (``can_batch = True``): called only when this
        component is the *sole* active one, tracing is off, and no
        other component wakes for at least ``budget`` cycles.  The
        implementation must be cycle-for-cycle equivalent to that many
        naive ticks and must return early (the count actually
        consumed, at least 1) at any tick whose effects could wake
        another component -- poking it so the kernel re-polls at the
        exact naive cycle.
        """
        self.tick()
        return 1

    # -- vectorized-dispatch helpers ----------------------------------
    def poke(self) -> None:
        """Invalidate this component's cached quiescence claim.

        Any code that changes state a *quiescent* component's
        ``next_activity`` answer depends on must poke it, or the
        dispatch table would trust a stale claim.
        """
        self._wake_valid = False

    def watch(self, component: "Component") -> None:
        """Register ``component`` to be poked by :meth:`wake_watchers`."""
        if component not in self._watchers:
            self._watchers.append(component)

    def wake_watchers(self) -> None:
        """Poke this component and everything watching it."""
        self._wake_valid = False
        for watcher in self._watchers:
            watcher._wake_valid = False

    def sync_skips(self) -> None:
        """Apply any deferred ``on_skip`` reconciliation *now*.

        Used before externally-driven state mutation (a CTRL register
        write flipping the controller's FSM): pending quiescent cycles
        must be charged to the *old* state before it changes.  Also
        invalidates the wake cache.  No-op outside vectorized dispatch.
        """
        sim = self.sim
        if sim is not None and sim._dispatching:
            pending = sim.cycle - self._synced
            if pending > 0:
                self.on_skip(pending)
                self._synced = sim.cycle
        self._wake_valid = False

    # -- helpers -------------------------------------------------------
    @property
    def now(self) -> int:
        """Current cycle number (0 before the first attach).

        Raises :class:`SimulationError` on a component that was removed
        from its simulator: a detached component has no clock, and
        silently timestamping events or stats at cycle 0 hides
        use-after-remove bugs (the partial-reconfiguration path swaps
        whole FIFO fabrics out of the system).
        """
        if self.sim is None:
            if self._detached:
                raise SimulationError(
                    f"component {self.name!r} was removed from its "
                    "simulator; 'now' is undefined after detach"
                )
            return 0
        return self.sim.cycle

    def trace_event(self, event: str, **data: object) -> None:
        """Record an event in the simulator trace, if tracing is on."""
        if self.sim is not None:
            # remembered even without a trace: names the most recently
            # active component in deadlock diagnostics
            self.sim.last_active = self.name
            if self.sim.trace is not None:
                self.sim.trace.record(self.sim.cycle, self.name, event, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class ComponentProfile:
    """Per-component slice of :meth:`Simulator.profile`."""

    name: str
    ticks: int = 0
    time_s: float = 0.0


@dataclass
class SimProfile:
    """Cycle accounting of one :class:`Simulator`'s execution.

    ``ticked`` counts cycles executed through the naive two-phase
    schedule, ``skipped`` counts cycles fast-forwarded over declared
    idle windows; the two always sum to ``cycles``.  ``components`` is
    populated with per-component tick counts and host-time attribution
    when the simulator was built with ``profile_time=True`` (the
    instrumented loop costs two clock reads per component per cycle,
    so it is off by default).
    """

    cycles: int
    ticked: int
    skipped: int
    skip_windows: int
    components: Dict[str, ComponentProfile] = field(default_factory=dict)

    @property
    def skip_ratio(self) -> float:
        """Fraction of simulated cycles that were fast-forwarded."""
        return self.skipped / self.cycles if self.cycles else 0.0

    def render(self) -> str:
        lines = [
            f"cycles          {self.cycles:>10}",
            f"  ticked        {self.ticked:>10}",
            f"  skipped       {self.skipped:>10} "
            f"({100 * self.skip_ratio:.1f}% in {self.skip_windows} windows)",
        ]
        if self.components:
            total = sum(p.time_s for p in self.components.values())
            lines.append("host time attribution:")
            ranked = sorted(
                self.components.values(), key=lambda p: -p.time_s
            )
            for prof in ranked:
                share = prof.time_s / total if total else 0.0
                lines.append(
                    f"  {prof.name:<20} {prof.ticks:>10} ticks "
                    f"{1e3 * prof.time_s:>9.2f} ms ({100 * share:.1f}%)"
                )
        return "\n".join(lines)


class Simulator:
    """Owns the clock and the component list.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.tracing.Trace` collecting events.
    idle_skip:
        Enable the quiescence fast path (default True).  With it off
        the kernel is the plain two-phase stepper; results must be
        bit-identical either way.
    vectorized:
        Enable the dispatch-table fast path on top of idle skipping
        (default True): quiescent components are not even dispatched,
        and -- when no trace is attached ("hot mode") -- a solely
        active component may batch runs of consecutive ticks.  Results
        must be bit-identical to both other schedules.  Automatically
        disabled by ``strict``/``profile_time`` and by registering any
        component with :attr:`Component.requires_full_dispatch`.
    strict:
        Paranoia mode: every declared-idle window is executed through
        the naive stepper as well, asserting that no component emitted
        a trace event or woke earlier than declared.  Used by the
        equivalence tests; costs naive speed plus the checks.
    profile_time:
        Attribute host wall-clock time to individual components (see
        :meth:`profile`).  Slows the naive loop down; off by default.
    """

    #: predicate re-check granularity inside a declared-idle window --
    #: bounds how far ``run_until`` trusts quiescence between predicate
    #: evaluations (predicates must be component-state functions, but a
    #: bounded chunk keeps even a misused clock-reading predicate from
    #: overshooting by more than one chunk)
    max_skip_chunk = 1 << 14

    def __init__(
        self,
        trace: Optional[Trace] = None,
        idle_skip: bool = True,
        strict: bool = False,
        profile_time: bool = False,
        vectorized: bool = True,
    ) -> None:
        self.cycle = 0
        self.trace = trace
        self.idle_skip = idle_skip
        self.strict = strict
        self.profile_time = profile_time
        self.vectorized = (
            vectorized and idle_skip and not strict and not profile_time
        )
        #: registered components that veto the dispatch table
        self._full_dispatch = 0
        #: True while inside a vectorized step/run_until epoch (skip
        #: reconciliation is deferred per component during this time)
        self._dispatching = False
        #: name of the component that most recently emitted an event
        self.last_active: Optional[str] = None
        self._components: List[Component] = []
        self._names = set()
        # accounting for profile()
        self._ticked = 0
        self._skipped = 0
        self._skip_windows = 0
        self._profiles: Dict[str, ComponentProfile] = {}

    # -- registration ----------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._names:
            raise SimulationError(
                f"duplicate component name {component.name!r}"
            )
        self._names.add(component.name)
        self._components.append(component)
        if component.requires_full_dispatch:
            self._full_dispatch += 1
        component.attach(self)
        return component

    def add_all(self, components: Iterable[Component]) -> None:
        for component in components:
            self.add(component)

    def remove(self, component: Component) -> None:
        """Unregister a component (used by partial reconfiguration).

        Raises
        ------
        SimulationError
            If the component is not registered with this simulator.
        """
        if component not in self._components:
            raise SimulationError(
                f"cannot remove {component.name!r}: not registered "
                "with this simulator"
            )
        self._components.remove(component)
        self._names.discard(component.name)
        if component.requires_full_dispatch:
            self._full_dispatch -= 1
        if self.last_active == component.name:
            # never let DeadlockError diagnostics name a component
            # that is no longer in the system
            self.last_active = None
        component.detach()

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    def component(self, name: str) -> Component:
        for comp in self._components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    # -- execution ---------------------------------------------------------
    def reset(self) -> None:
        """Reset the clock, the profile counters and every component."""
        self.cycle = 0
        self._ticked = 0
        self._skipped = 0
        self._skip_windows = 0
        self._profiles = {}
        for comp in self._components:
            comp.reset()

    def _tick_all(self) -> None:
        """One naive two-phase cycle."""
        if self.profile_time:
            profiles = self._profiles
            for comp in self._components:
                prof = profiles.get(comp.name)
                if prof is None:
                    prof = profiles[comp.name] = ComponentProfile(comp.name)
                begin = perf_counter()
                comp.tick()
                prof.time_s += perf_counter() - begin
                prof.ticks += 1
            for comp in self._components:
                begin = perf_counter()
                comp.commit()
                profiles[comp.name].time_s += perf_counter() - begin
        else:
            for comp in self._components:
                comp.tick()
            for comp in self._components:
                comp.commit()
        self.cycle += 1
        self._ticked += 1

    def _wake_cycle(self) -> Optional[int]:
        """Earliest cycle any component needs; ``self.cycle`` = active.

        Returns ``None`` when every component is indefinitely idle
        (only a deadlock bound or the caller's step target can end the
        wait).
        """
        wake: Optional[int] = None
        now = self.cycle
        for comp in self._components:
            target = comp.next_activity()
            if target is None:
                continue
            if target <= now:
                return now
            if wake is None or target < wake:
                wake = target
        return wake

    def _skip(self, cycles: int) -> None:
        """Fast-forward over a window every component declared idle."""
        if self.strict:
            self._skip_checked(cycles)
            return
        for comp in self._components:
            comp.on_skip(cycles)
        self.cycle += cycles
        self._skipped += cycles
        self._skip_windows += 1

    def _skip_checked(self, cycles: int) -> None:
        """Strict mode: tick naively through the window and assert that
        the quiescence claims held (no events, no early wake-ups)."""
        events_before = len(self.trace) if self.trace is not None else None
        last_before = self.last_active
        for offset in range(cycles):
            wake = self._wake_cycle()
            if wake is not None and wake <= self.cycle:
                raise SimulationError(
                    f"strict idle-skip: a component turned active at "
                    f"cycle {self.cycle}, {offset} cycles into a "
                    f"{cycles}-cycle declared-idle window"
                )
            self._tick_all()
        if events_before is not None and len(self.trace) != events_before:
            culprit = self.trace.dump().splitlines()[events_before]
            raise SimulationError(
                "strict idle-skip: trace events emitted during a "
                f"declared-idle window (first: {culprit!r})"
            )
        if self.last_active != last_before:
            raise SimulationError(
                f"strict idle-skip: component {self.last_active!r} was "
                "active during a declared-idle window"
            )

    # -- vectorized dispatch ---------------------------------------------
    @property
    def dispatch_active(self) -> bool:
        """True when the dispatch-table fast path is in effect."""
        return self.vectorized and self._full_dispatch == 0

    @property
    def hot(self) -> bool:
        """True when running trace-free on the dispatch table.

        Hot runs keep every counter and final state bit-exact but
        record no trace events, so span reconstruction is impossible
        for them (``repro.obs`` refuses loudly).
        """
        return self.trace is None and self.dispatch_active

    def _dispatch_begin(self) -> None:
        """Open a vectorized epoch at a public ``step``/``run_until``.

        Anything may have mutated component state between public calls
        (register backdoors, FIFO drains in test harnesses), so every
        cached wake is dropped; deferred-skip accounting starts from
        the current cycle because all prior cycles are fully settled.
        """
        self._dispatching = True
        now = self.cycle
        for comp in self._components:
            comp._wake_valid = False
            comp._synced = now

    def _dispatch_end(self) -> None:
        """Close the epoch: flush every deferred ``on_skip``.

        After this, stats and timers are exactly what the naive
        schedule would show at this cycle -- callers may inspect any
        component state.
        """
        now = self.cycle
        for comp in self._components:
            pending = now - comp._synced
            if pending > 0:
                comp.on_skip(pending)
                comp._synced = now
        self._dispatching = False

    def _poll(self, comp: Component, now: int) -> Optional[int]:
        """Re-poll a component's quiescence claim with settled accounting.

        ``next_activity`` implementations read self-timed counters
        (``wait`` timers, watchdogs) that deferred-skip accounting
        leaves stale; flushing the pending ``on_skip`` first makes the
        claim exactly what the naive schedule would compute at ``now``.
        """
        pending = now - comp._synced
        if pending > 0:
            comp.on_skip(pending)
            comp._synced = now
        comp._wake = wake = comp.next_activity()
        comp._wake_valid = True
        return wake

    def _dispatch_scan(
        self, bound: int
    ) -> Tuple[int, Optional[Component], int]:
        """One pass over the cached quiescence claims.

        Returns ``(due, sole, horizon)``: how many components are due
        this cycle, the single due component when there is exactly one
        (the hot-batch candidate), and the earliest strictly-future
        wake clamped to ``bound``.  The scan stops as soon as a second
        due component turns up -- a full cycle has to run then and the
        horizon is irrelevant (later components keep their caches and
        are re-polled by :meth:`_dispatch_cycle` where needed).
        """
        now = self.cycle
        due = 0
        sole: Optional[Component] = None
        horizon = bound
        for comp in self._components:
            if comp._wake_valid:
                wake = comp._wake
            else:  # inlined _poll: this loop runs before every event
                pending = now - comp._synced
                if pending > 0:
                    comp.on_skip(pending)
                    comp._synced = now
                comp._wake = wake = comp.next_activity()
                comp._wake_valid = True
            if wake is None:
                continue
            if wake <= now:
                due += 1
                if due > 1:
                    break
                sole = comp
            elif wake < horizon:
                horizon = wake
        return due, sole, horizon

    def _dispatch_skip(self, cycles: int) -> None:
        """Fast-forward a quiescent window; ``on_skip`` stays deferred."""
        self.cycle += cycles
        self._skipped += cycles
        self._skip_windows += 1

    def _dispatch_cycle(self) -> None:
        """Execute one cycle touching only the components that are due.

        Visibility matches the naive schedule exactly: the single tick
        pass runs in registration order, re-polling each component when
        the pass reaches it -- so a *forward* poke (an earlier
        component waking a later one) lands the same cycle, while a
        *backward* poke takes effect next cycle, which is precisely
        when the naive two-phase schedule would surface it.  The commit
        sweep again walks registration order so same-cycle trace events
        keep their naive order, and picks up components whose commit
        phase can still observe a backward poke (a FIFO staged into by
        a later producer).

        In hot mode (no trace), a solely-due component supporting
        :meth:`Component.tick_batch` may instead consume a whole run of
        cycles, bounded by ``limit`` and by every other component's
        declared wake.
        """
        now = self.cycle
        components = self._components
        for comp in components:
            if comp._wake_valid:
                wake = comp._wake
            else:  # inlined _poll (hot loop)
                pending = now - comp._synced
                if pending > 0:
                    comp.on_skip(pending)
                    comp._synced = now
                comp._wake = wake = comp.next_activity()
                comp._wake_valid = True
            if wake is None or wake > now:
                continue
            pending = now - comp._synced
            if pending > 0:
                comp.on_skip(pending)
            comp._synced = now + 1
            comp._ran_at = now
            comp.tick()
            comp._wake_valid = False
        for comp in components:
            if comp._ran_at == now:
                comp.commit()
            elif not comp._wake_valid:
                wake = self._poll(comp, now)
                if wake is not None and wake <= now:
                    comp.commit()
                    comp._wake_valid = False
        self.cycle = now + 1
        self._ticked += 1

    def _dispatch_batch(self, sole: Component, horizon: int) -> None:
        """Run the hot-mode batch lane for a sole due component.

        Preconditions established by the caller from a
        :meth:`_dispatch_scan`: tracing off, exactly one component due
        this cycle, that component opts in via ``can_batch``, and every
        other component either sleeps past ``horizon`` or is poke-wired
        (indefinitely idle).  The batch itself is additionally bounded
        inside ``tick_batch`` by FIFO stall-watch thresholds so stalled
        consumers wake on the exact naive cycle.
        """
        now = self.cycle
        pending = now - sole._synced
        if pending > 0:
            sole.on_skip(pending)
        consumed = sole.tick_batch(horizon - now)
        if consumed < 1:  # pragma: no cover - defensive
            consumed = 1
        sole._synced = now + consumed
        sole._wake_valid = False
        self.cycle = now + consumed
        self._ticked += consumed

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` cycles."""
        target = self.cycle + cycles
        if not self.idle_skip:
            while self.cycle < target:
                self._tick_all()
            return
        if self.dispatch_active:
            self._dispatch_begin()
            try:
                hot = self.trace is None
                while self.cycle < target:
                    due, sole, horizon = self._dispatch_scan(target)
                    if due == 0:
                        self._dispatch_skip(horizon - self.cycle)
                        continue
                    if (hot and due == 1 and sole.can_batch
                            and horizon - self.cycle >= 2):
                        self._dispatch_batch(sole, horizon)
                        continue
                    self._dispatch_cycle()
            finally:
                self._dispatch_end()
            return
        while self.cycle < target:
            wake = self._wake_cycle()
            if wake is None:
                self._skip(target - self.cycle)
                return
            if wake > self.cycle:
                self._skip(min(wake, target) - self.cycle)
                continue
            self._tick_all()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        what: str = "condition",
    ) -> int:
        """Step until ``predicate()`` is true; return elapsed cycles.

        The predicate must be a function of component state (not of the
        raw clock): during a declared-idle window no component state
        changes, so the kernel re-evaluates it only at wake-ups and
        every :attr:`max_skip_chunk` cycles.

        Raises
        ------
        DeadlockError
            If the predicate is still false after ``max_cycles`` steps.
        """
        start = self.cycle
        deadline = start + max_cycles
        if self.idle_skip and self.dispatch_active:
            self._dispatch_begin()
            try:
                hot = self.trace is None
                while not predicate():
                    if self.cycle >= deadline:
                        self._raise_deadlock(max_cycles, what)
                    bound = min(deadline, self.cycle + self.max_skip_chunk)
                    due, sole, horizon = self._dispatch_scan(bound)
                    if due == 0:
                        self._dispatch_skip(horizon - self.cycle)
                        continue
                    if (hot and due == 1 and sole.can_batch
                            and horizon - self.cycle >= 2):
                        self._dispatch_batch(sole, horizon)
                        continue
                    self._dispatch_cycle()
            finally:
                self._dispatch_end()
            return self.cycle - start
        while not predicate():
            if self.cycle >= deadline:
                self._raise_deadlock(max_cycles, what)
            if self.idle_skip:
                wake = self._wake_cycle()
                bound = min(deadline, self.cycle + self.max_skip_chunk)
                target = bound if wake is None else min(wake, bound)
                if target > self.cycle:
                    self._skip(target - self.cycle)
                    continue
            self._tick_all()
        return self.cycle - start

    def _raise_deadlock(self, max_cycles: int, what: str) -> None:
        last = self.last_active or "<none>"
        raise DeadlockError(
            f"{what} not reached within {max_cycles} cycles "
            f"(stuck at cycle {self.cycle}, last active "
            f"component: {last})"
        )

    # -- introspection ----------------------------------------------------
    def profile(self) -> SimProfile:
        """Cycle accounting: ticked vs skipped cycles, time attribution.

        Cheap counters (ticked/skipped/windows) are always maintained;
        per-component tick counts and host-time shares require
        ``profile_time=True``.
        """
        return SimProfile(
            cycles=self.cycle,
            ticked=self._ticked,
            skipped=self._skipped,
            skip_windows=self._skip_windows,
            components={
                name: ComponentProfile(prof.name, prof.ticks, prof.time_s)
                for name, prof in self._profiles.items()
            },
        )
