"""Cycle-driven simulation kernel.

The whole reproduction is built on a deliberately simple execution model:
a :class:`Simulator` owns a set of :class:`Component` objects and advances
a global clock one cycle at a time.  On every cycle each component's
:meth:`Component.tick` is called once, in registration order, followed by
:meth:`Component.commit` in the same order.

The two-phase scheme gives registered (flip-flop like) semantics where it
matters: a component computes its next state in ``tick`` using only the
*current* outputs of other components, then publishes it in ``commit``.
Components that do not need the distinction can do all their work in
``tick`` and ignore ``commit``.

This is not an event-driven HDL simulator -- it is the standard
cycle-approximate style used by architecture simulators, which is the
right fidelity level for reproducing the paper's cycle counts (bus beats,
FIFO occupancy, controller FSM states) without modelling individual
wires.

Idle skipping
-------------

Long waits dominate many workloads (a DFT's ``exec_wait``, SDRAM
latency, driver backoff windows): every component is stalled, yet the
naive stepper still pays two Python calls per component per cycle.
Components may therefore declare *quiescence* through
:meth:`Component.next_activity`: "my ``tick``/``commit`` are observable
no-ops until cycle N (or until another component acts)".  When every
registered component is quiescent, :meth:`Simulator.step` and
:meth:`Simulator.run_until` fast-forward the clock to the earliest
declared wake-up instead of ticking through the gap, giving each
component the chance to reconcile its internal cycle counters via
:meth:`Component.on_skip` so statistics stay bit-identical with the
naive schedule.

The protocol and its correctness rules are documented in
``docs/SIMULATION.md``; ``Simulator(strict=True)`` cross-checks every
declared-idle window by running the naive stepper through it and
asserting that nothing observable happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional

from .errors import DeadlockError, SimulationError
from .tracing import Trace


class Component:
    """Base class for everything that lives on the simulated clock.

    Subclasses override :meth:`tick` (compute phase) and optionally
    :meth:`commit` (publish phase) and :meth:`reset`.  Components that
    can stall override :meth:`next_activity` (and, when they keep
    per-cycle counters, :meth:`on_skip`) to take part in idle skipping.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.sim: Optional["Simulator"] = None
        self._detached = False

    # -- lifecycle -----------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Called by the simulator when the component is registered."""
        self.sim = sim
        self._detached = False

    def detach(self) -> None:
        """Called by the simulator when the component is removed."""
        self.sim = None
        self._detached = True

    def reset(self) -> None:
        """Return the component to its power-on state."""

    # -- per-cycle hooks ----------------------------------------------
    def tick(self) -> None:
        """Compute phase: runs once per cycle before any commit."""

    def commit(self) -> None:
        """Publish phase: runs once per cycle after every tick."""

    # -- quiescence protocol ------------------------------------------
    def next_activity(self) -> Optional[int]:
        """Earliest future cycle at which this component must tick.

        Return values (see ``docs/SIMULATION.md`` for the full
        contract):

        * any cycle ``<= self.now`` -- *active*: the component needs
          its tick this cycle; no skipping may happen.
        * a cycle ``N > self.now`` -- quiescent until ``N``: every
          tick/commit strictly before ``N`` is an observable no-op
          (no trace events, no cross-component effects) provided no
          *other* component acts either.
        * ``None`` -- indefinitely idle: only an external poke (another
          component's activity, a register write between steps) can
          make its ticks matter again.

        The base implementation returns ``self.now`` (always active),
        which is the safe default for components the kernel knows
        nothing about.
        """
        return self.now

    def on_skip(self, cycles: int) -> None:
        """Reconcile internal per-cycle counters after a skipped gap.

        Called with the number of fast-forwarded cycles whenever the
        simulator jumps over a window this component declared idle.
        Implementations must apply exactly the state changes ``cycles``
        consecutive no-op ticks would have applied (stat counters,
        wait-timer decrements) -- nothing observable.
        """

    # -- helpers -------------------------------------------------------
    @property
    def now(self) -> int:
        """Current cycle number (0 before the first attach).

        Raises :class:`SimulationError` on a component that was removed
        from its simulator: a detached component has no clock, and
        silently timestamping events or stats at cycle 0 hides
        use-after-remove bugs (the partial-reconfiguration path swaps
        whole FIFO fabrics out of the system).
        """
        if self.sim is None:
            if self._detached:
                raise SimulationError(
                    f"component {self.name!r} was removed from its "
                    "simulator; 'now' is undefined after detach"
                )
            return 0
        return self.sim.cycle

    def trace_event(self, event: str, **data: object) -> None:
        """Record an event in the simulator trace, if tracing is on."""
        if self.sim is not None:
            # remembered even without a trace: names the most recently
            # active component in deadlock diagnostics
            self.sim.last_active = self.name
            if self.sim.trace is not None:
                self.sim.trace.record(self.sim.cycle, self.name, event, data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


@dataclass
class ComponentProfile:
    """Per-component slice of :meth:`Simulator.profile`."""

    name: str
    ticks: int = 0
    time_s: float = 0.0


@dataclass
class SimProfile:
    """Cycle accounting of one :class:`Simulator`'s execution.

    ``ticked`` counts cycles executed through the naive two-phase
    schedule, ``skipped`` counts cycles fast-forwarded over declared
    idle windows; the two always sum to ``cycles``.  ``components`` is
    populated with per-component tick counts and host-time attribution
    when the simulator was built with ``profile_time=True`` (the
    instrumented loop costs two clock reads per component per cycle,
    so it is off by default).
    """

    cycles: int
    ticked: int
    skipped: int
    skip_windows: int
    components: Dict[str, ComponentProfile] = field(default_factory=dict)

    @property
    def skip_ratio(self) -> float:
        """Fraction of simulated cycles that were fast-forwarded."""
        return self.skipped / self.cycles if self.cycles else 0.0

    def render(self) -> str:
        lines = [
            f"cycles          {self.cycles:>10}",
            f"  ticked        {self.ticked:>10}",
            f"  skipped       {self.skipped:>10} "
            f"({100 * self.skip_ratio:.1f}% in {self.skip_windows} windows)",
        ]
        if self.components:
            total = sum(p.time_s for p in self.components.values())
            lines.append("host time attribution:")
            ranked = sorted(
                self.components.values(), key=lambda p: -p.time_s
            )
            for prof in ranked:
                share = prof.time_s / total if total else 0.0
                lines.append(
                    f"  {prof.name:<20} {prof.ticks:>10} ticks "
                    f"{1e3 * prof.time_s:>9.2f} ms ({100 * share:.1f}%)"
                )
        return "\n".join(lines)


class Simulator:
    """Owns the clock and the component list.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.tracing.Trace` collecting events.
    idle_skip:
        Enable the quiescence fast path (default True).  With it off
        the kernel is the plain two-phase stepper; results must be
        bit-identical either way.
    strict:
        Paranoia mode: every declared-idle window is executed through
        the naive stepper as well, asserting that no component emitted
        a trace event or woke earlier than declared.  Used by the
        equivalence tests; costs naive speed plus the checks.
    profile_time:
        Attribute host wall-clock time to individual components (see
        :meth:`profile`).  Slows the naive loop down; off by default.
    """

    #: predicate re-check granularity inside a declared-idle window --
    #: bounds how far ``run_until`` trusts quiescence between predicate
    #: evaluations (predicates must be component-state functions, but a
    #: bounded chunk keeps even a misused clock-reading predicate from
    #: overshooting by more than one chunk)
    max_skip_chunk = 1 << 14

    def __init__(
        self,
        trace: Optional[Trace] = None,
        idle_skip: bool = True,
        strict: bool = False,
        profile_time: bool = False,
    ) -> None:
        self.cycle = 0
        self.trace = trace
        self.idle_skip = idle_skip
        self.strict = strict
        self.profile_time = profile_time
        #: name of the component that most recently emitted an event
        self.last_active: Optional[str] = None
        self._components: List[Component] = []
        self._names = set()
        # accounting for profile()
        self._ticked = 0
        self._skipped = 0
        self._skip_windows = 0
        self._profiles: Dict[str, ComponentProfile] = {}

    # -- registration ----------------------------------------------------
    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component.name in self._names:
            raise SimulationError(
                f"duplicate component name {component.name!r}"
            )
        self._names.add(component.name)
        self._components.append(component)
        component.attach(self)
        return component

    def add_all(self, components: Iterable[Component]) -> None:
        for component in components:
            self.add(component)

    def remove(self, component: Component) -> None:
        """Unregister a component (used by partial reconfiguration).

        Raises
        ------
        SimulationError
            If the component is not registered with this simulator.
        """
        if component not in self._components:
            raise SimulationError(
                f"cannot remove {component.name!r}: not registered "
                "with this simulator"
            )
        self._components.remove(component)
        self._names.discard(component.name)
        if self.last_active == component.name:
            # never let DeadlockError diagnostics name a component
            # that is no longer in the system
            self.last_active = None
        component.detach()

    @property
    def components(self) -> List[Component]:
        return list(self._components)

    def component(self, name: str) -> Component:
        for comp in self._components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    # -- execution ---------------------------------------------------------
    def reset(self) -> None:
        """Reset the clock, the profile counters and every component."""
        self.cycle = 0
        self._ticked = 0
        self._skipped = 0
        self._skip_windows = 0
        self._profiles = {}
        for comp in self._components:
            comp.reset()

    def _tick_all(self) -> None:
        """One naive two-phase cycle."""
        if self.profile_time:
            profiles = self._profiles
            for comp in self._components:
                prof = profiles.get(comp.name)
                if prof is None:
                    prof = profiles[comp.name] = ComponentProfile(comp.name)
                begin = perf_counter()
                comp.tick()
                prof.time_s += perf_counter() - begin
                prof.ticks += 1
            for comp in self._components:
                begin = perf_counter()
                comp.commit()
                profiles[comp.name].time_s += perf_counter() - begin
        else:
            for comp in self._components:
                comp.tick()
            for comp in self._components:
                comp.commit()
        self.cycle += 1
        self._ticked += 1

    def _wake_cycle(self) -> Optional[int]:
        """Earliest cycle any component needs; ``self.cycle`` = active.

        Returns ``None`` when every component is indefinitely idle
        (only a deadlock bound or the caller's step target can end the
        wait).
        """
        wake: Optional[int] = None
        now = self.cycle
        for comp in self._components:
            target = comp.next_activity()
            if target is None:
                continue
            if target <= now:
                return now
            if wake is None or target < wake:
                wake = target
        return wake

    def _skip(self, cycles: int) -> None:
        """Fast-forward over a window every component declared idle."""
        if self.strict:
            self._skip_checked(cycles)
            return
        for comp in self._components:
            comp.on_skip(cycles)
        self.cycle += cycles
        self._skipped += cycles
        self._skip_windows += 1

    def _skip_checked(self, cycles: int) -> None:
        """Strict mode: tick naively through the window and assert that
        the quiescence claims held (no events, no early wake-ups)."""
        events_before = len(self.trace) if self.trace is not None else None
        last_before = self.last_active
        for offset in range(cycles):
            wake = self._wake_cycle()
            if wake is not None and wake <= self.cycle:
                raise SimulationError(
                    f"strict idle-skip: a component turned active at "
                    f"cycle {self.cycle}, {offset} cycles into a "
                    f"{cycles}-cycle declared-idle window"
                )
            self._tick_all()
        if events_before is not None and len(self.trace) != events_before:
            culprit = self.trace.dump().splitlines()[events_before]
            raise SimulationError(
                "strict idle-skip: trace events emitted during a "
                f"declared-idle window (first: {culprit!r})"
            )
        if self.last_active != last_before:
            raise SimulationError(
                f"strict idle-skip: component {self.last_active!r} was "
                "active during a declared-idle window"
            )

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` cycles."""
        target = self.cycle + cycles
        if not self.idle_skip:
            while self.cycle < target:
                self._tick_all()
            return
        while self.cycle < target:
            wake = self._wake_cycle()
            if wake is None:
                self._skip(target - self.cycle)
                return
            if wake > self.cycle:
                self._skip(min(wake, target) - self.cycle)
                continue
            self._tick_all()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int = 1_000_000,
        what: str = "condition",
    ) -> int:
        """Step until ``predicate()`` is true; return elapsed cycles.

        The predicate must be a function of component state (not of the
        raw clock): during a declared-idle window no component state
        changes, so the kernel re-evaluates it only at wake-ups and
        every :attr:`max_skip_chunk` cycles.

        Raises
        ------
        DeadlockError
            If the predicate is still false after ``max_cycles`` steps.
        """
        start = self.cycle
        deadline = start + max_cycles
        while not predicate():
            if self.cycle >= deadline:
                last = self.last_active or "<none>"
                raise DeadlockError(
                    f"{what} not reached within {max_cycles} cycles "
                    f"(stuck at cycle {self.cycle}, last active "
                    f"component: {last})"
                )
            if self.idle_skip:
                wake = self._wake_cycle()
                bound = min(deadline, self.cycle + self.max_skip_chunk)
                target = bound if wake is None else min(wake, bound)
                if target > self.cycle:
                    self._skip(target - self.cycle)
                    continue
            self._tick_all()
        return self.cycle - start

    # -- introspection ----------------------------------------------------
    def profile(self) -> SimProfile:
        """Cycle accounting: ticked vs skipped cycles, time attribution.

        Cheap counters (ticked/skipped/windows) are always maintained;
        per-component tick counts and host-time shares require
        ``profile_time=True``.
        """
        return SimProfile(
            cycles=self.cycle,
            ticked=self._ticked,
            skipped=self._skipped,
            skip_windows=self._skip_windows,
            components={
                name: ComponentProfile(prof.name, prof.ticks, prof.time_s)
                for name, prof in self._profiles.items()
            },
        )
