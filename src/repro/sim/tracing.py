"""Tracing, statistics and VCD export.

Three small facilities used across the simulator:

* :class:`Trace` -- an append-only event log ``(cycle, component, event,
  data)``.  Cheap enough to leave on in tests; benchmarks run without it.
* :class:`Stats` -- named monotonically increasing counters with a
  pretty report, used by the bus / controller / drivers to account for
  cycles spent in each activity.
* :class:`VCDWriter` -- minimal value-change-dump writer so waveforms of
  selected scalar signals can be inspected in GTKWave.  This mirrors how
  the original project was debugged in RTL simulation.
"""

from __future__ import annotations

import io
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    component: str
    event: str
    data: Dict[str, object]

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.cycle:>8}] {self.component}: {self.event} {payload}".rstrip()


class Trace:
    """Append-only event log with simple query helpers.

    A bounded trace (``capacity=N``) stops storing events once full, but
    it never *silently* loses history: every rejected event bumps
    :attr:`dropped`, and :attr:`truncated` tells consumers the log they
    are about to analyse is incomplete.  Anything that treats the trace
    as a record (the run profiler, fault-history diffing) must check it.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: List[TraceEvent] = []
        self._capacity = capacity
        self.dropped = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def truncated(self) -> bool:
        """True if at least one event was rejected for lack of space."""
        return self.dropped > 0

    def record(
        self, cycle: int, component: str, event: str, data: Dict[str, object]
    ) -> None:
        if self._capacity is not None and len(self._events) >= self._capacity:
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle, component, event, dict(data)))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(
        self,
        component: Optional[str] = None,
        event: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events filtered by component and/or event name."""
        out = self._events
        if component is not None:
            out = [e for e in out if e.component == component]
        if event is not None:
            out = [e for e in out if e.event == event]
        return list(out)

    def with_prefix(self, prefix: str) -> List[TraceEvent]:
        """Events whose name starts with ``prefix``.

        Fault injectors emit ``fault.<kind>`` events; recovery shows up
        as ``trap`` / ``error`` / ``abort`` / ``retry`` / ``degraded``.
        ``with_prefix("fault.")`` therefore yields a run's complete
        injected-fault history, which replays can be diffed against.
        """
        return [e for e in self._events if e.event.startswith(prefix)]

    def first(self, component: str, event: str) -> Optional[TraceEvent]:
        for entry in self._events:
            if entry.component == component and entry.event == event:
                return entry
        return None

    def dump(self) -> str:
        return "\n".join(str(e) for e in self._events)


class Stats:
    """Named counters with categories.

    ``Stats`` instances support ``+`` so per-component statistics can be
    merged into a system-level report.  Counters come in two flavours:
    monotonically increasing sums (:meth:`incr`) and gauge-style maxima
    (:meth:`maximize`).  Merging sums the former and takes the maximum
    of the latter -- summing two FIFOs' ``max_occupancy_atoms`` would
    fabricate an occupancy neither ever reached.
    """

    def __init__(self) -> None:
        self._counters: Counter = Counter()
        self._gauges: set = set()

    def incr(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount

    def maximize(self, name: str, value: int) -> None:
        """Keep the running maximum of a gauge-style statistic."""
        self._gauges.add(name)
        if value > self._counters.get(name, 0):
            self._counters[name] = value

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def items(self) -> Iterable[Tuple[str, int]]:
        return sorted(self._counters.items())

    def is_gauge(self, name: str) -> bool:
        """True if ``name`` was ever updated through :meth:`maximize`."""
        return name in self._gauges

    def __add__(self, other: "Stats") -> "Stats":
        merged = Stats()
        merged._gauges = self._gauges | other._gauges
        merged._counters = self._counters + other._counters
        for name in merged._gauges:
            merged._counters[name] = max(
                self._counters.get(name, 0), other._counters.get(name, 0)
            )
        return merged

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counters)

    def report(self, title: str = "stats") -> str:
        lines = [title]
        width = max((len(k) for k in self._counters), default=0)
        for key, value in self.items():
            lines.append(f"  {key:<{width}} {value}")
        return "\n".join(lines)


@dataclass
class _VCDSignal:
    name: str
    width: int
    ident: str
    last: Optional[int] = None


class VCDWriter:
    """Minimal VCD (value change dump) writer.

    Usage::

        vcd = VCDWriter(timescale="20ns")      # 50 MHz clock
        vcd.register("ocp.start", width=1)
        ...
        vcd.change(cycle, "ocp.start", 1)
        text = vcd.render()
    """

    _IDENT_ALPHABET = "".join(chr(c) for c in range(33, 127))

    def __init__(self, timescale: str = "1ns") -> None:
        self._timescale = timescale
        self._signals: Dict[str, _VCDSignal] = {}
        self._changes: List[Tuple[int, str, int]] = []

    def register(self, name: str, width: int = 1) -> None:
        if name in self._signals:
            return
        ident = self._make_ident(len(self._signals))
        self._signals[name] = _VCDSignal(name, width, ident)

    def _make_ident(self, index: int) -> str:
        alphabet = self._IDENT_ALPHABET
        ident = ""
        index += 1
        while index:
            index, rem = divmod(index - 1, len(alphabet))
            ident = alphabet[rem] + ident
        return ident

    def change(self, cycle: int, name: str, value: int) -> None:
        if name not in self._signals:
            self.register(name, width=max(1, int(value).bit_length()))
        sig = self._signals[name]
        # widen the declaration when a later value needs more bits; the
        # header is rendered last, so every change stays in range
        sig.width = max(sig.width, int(value).bit_length())
        if sig.last == value:
            return
        sig.last = value
        self._changes.append((cycle, name, value))

    def render(self) -> str:
        out = io.StringIO()
        out.write(f"$timescale {self._timescale} $end\n")
        out.write("$scope module repro $end\n")
        for sig in self._signals.values():
            kind = "wire"
            out.write(
                f"$var {kind} {sig.width} {sig.ident} "
                f"{sig.name.replace('.', '_')} $end\n"
            )
        out.write("$upscope $end\n$enddefinitions $end\n")
        current: Optional[int] = None
        for cycle, name, value in sorted(self._changes, key=lambda c: c[0]):
            if cycle != current:
                out.write(f"#{cycle}\n")
                current = cycle
            sig = self._signals[name]
            if sig.width == 1:
                out.write(f"{value & 1}{sig.ident}\n")
            else:
                out.write(f"b{value:b} {sig.ident}\n")
        return out.getvalue()

    def write(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render())
