"""OFDM receiver built on the DFT accelerator.

The paper motivates coprocessors with "compute-intensive tasks such as
signal processing"; the canonical consumer of a streaming DFT core is
an OFDM demodulator (every Wi-Fi/LTE symbol is one).  This module
implements the receiver chain around the DFT RAC:

* QPSK mapping / demapping,
* OFDM modulation (transmitter side, floating point -- it represents
  the remote end, not our SoC),
* cyclic-prefix removal and per-symbol demodulation through a
  selectable DFT backend (the OCP, the ISS software kernel, or the
  golden fixed-point model).

Everything on the receive path is Q15, matching the RAC's interface.
"""

from __future__ import annotations

import cmath
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.software import software_fft
from ..sim.errors import ConfigurationError
from ..sw.library import OuessantLibrary
from ..utils import fixedpoint as fp

#: QPSK constellation (Gray coded): bits -> unit-circle point
_QPSK = {
    (0, 0): complex(1, 1) / math.sqrt(2),
    (0, 1): complex(-1, 1) / math.sqrt(2),
    (1, 1): complex(-1, -1) / math.sqrt(2),
    (1, 0): complex(1, -1) / math.sqrt(2),
}


def qpsk_map(bits: Sequence[int]) -> List[complex]:
    """Pairs of bits -> QPSK symbols."""
    if len(bits) % 2:
        raise ConfigurationError("QPSK needs an even number of bits")
    return [_QPSK[(bits[i], bits[i + 1])] for i in range(0, len(bits), 2)]


def qpsk_demap(symbols: Sequence[complex]) -> List[int]:
    """Hard-decision QPSK demapping (inverse of :func:`qpsk_map`)."""
    bits: List[int] = []
    for symbol in symbols:
        bits.extend(_demap_quadrant(symbol))
    return bits


def _demap_quadrant(symbol: complex) -> Tuple[int, int]:
    if symbol.real >= 0 and symbol.imag >= 0:
        return (0, 0)
    if symbol.real < 0 and symbol.imag >= 0:
        return (0, 1)
    if symbol.real < 0 and symbol.imag < 0:
        return (1, 1)
    return (1, 0)


@dataclass(frozen=True)
class OFDMParams:
    """Waveform parameters.

    ``n_fft`` subcarriers (power of two; must match the DFT RAC),
    ``cp_len`` cyclic-prefix samples, ``used`` active subcarriers
    (symmetric around DC, DC unused).
    """

    n_fft: int = 64
    cp_len: int = 16
    used: int = 48

    def __post_init__(self) -> None:
        if self.used >= self.n_fft:
            raise ConfigurationError("used carriers must be < n_fft")
        if self.used % 2:
            raise ConfigurationError("used carriers must be even")
        if self.cp_len < 0 or self.cp_len >= self.n_fft:
            raise ConfigurationError("bad cyclic prefix length")

    @property
    def carrier_indices(self) -> List[int]:
        half = self.used // 2
        return list(range(1, half + 1)) + list(
            range(self.n_fft - half, self.n_fft)
        )

    @property
    def bits_per_symbol(self) -> int:
        return 2 * self.used


def modulate(
    bits: Sequence[int], params: OFDMParams, amplitude: float = 0.02
) -> Tuple[List[int], List[int]]:
    """Transmitter: bits -> Q15 time-domain samples (with CP).

    Floating-point IFFT (the remote transmitter), quantized to Q15 at
    the "ADC".  ``amplitude`` is per-carrier; the default keeps the
    peak of ~48 coherently-adding carriers inside Q15 (OFDM's infamous
    peak-to-average ratio -- 0.25 would clip hard).
    """
    if len(bits) % params.bits_per_symbol:
        raise ConfigurationError(
            f"bit count must be a multiple of {params.bits_per_symbol}"
        )
    re_out: List[int] = []
    im_out: List[int] = []
    for start in range(0, len(bits), params.bits_per_symbol):
        chunk = bits[start : start + params.bits_per_symbol]
        symbols = qpsk_map(chunk)
        grid = np.zeros(params.n_fft, dtype=complex)
        for index, symbol in zip(params.carrier_indices, symbols):
            grid[index] = symbol
        time = np.fft.ifft(grid) * params.n_fft * amplitude
        with_cp = np.concatenate([time[-params.cp_len:], time]) \
            if params.cp_len else time
        re_out.extend(fp.float_to_q15(v) for v in with_cp.real)
        im_out.extend(fp.float_to_q15(v) for v in with_cp.imag)
    return re_out, im_out


def awgn(
    re: Sequence[int], im: Sequence[int], noise_rms: float, seed: int = 0
) -> Tuple[List[int], List[int]]:
    """Add white Gaussian noise in the Q15 domain (the channel)."""
    rng = random.Random(seed)
    scale = noise_rms * fp.Q15_ONE

    def corrupt(values: Sequence[int]) -> List[int]:
        return [fp.saturate(int(v + rng.gauss(0, scale))) for v in values]

    return corrupt(re), corrupt(im)


class OFDMReceiver:
    """Demodulates OFDM symbols through a DFT backend.

    ``backend``: ``"ocp"`` (DFT RAC via an :class:`OuessantLibrary`),
    ``"sw"`` (the ISS radix-2 kernel) or ``"golden"``.
    """

    def __init__(
        self,
        params: OFDMParams,
        backend: str = "golden",
        library: Optional[OuessantLibrary] = None,
    ) -> None:
        if backend not in ("ocp", "sw", "golden"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        if backend == "ocp" and library is None:
            raise ConfigurationError("the ocp backend needs a library")
        self.params = params
        self.backend = backend
        self.library = library
        self.cycles = 0
        self.symbols_processed = 0

    def _dft(
        self, re: Sequence[int], im: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        if self.backend == "ocp":
            assert self.library is not None
            out = self.library.dft(list(re), list(im))
            assert self.library.last_result is not None
            self.cycles += self.library.last_result.total_cycles
            return out
        if self.backend == "sw":
            out, run = software_fft(re, im)
            self.cycles += run.cycles
            return out
        return fp.fft_q15(re, im)

    def demodulate(
        self, re: Sequence[int], im: Sequence[int]
    ) -> List[int]:
        """Time-domain Q15 samples (with CP) -> received bits."""
        params = self.params
        frame = params.n_fft + params.cp_len
        if len(re) != len(im) or len(re) % frame:
            raise ConfigurationError(
                f"input must be a multiple of {frame} samples"
            )
        bits: List[int] = []
        for start in range(0, len(re), frame):
            body = slice(start + params.cp_len, start + frame)
            spec_re, spec_im = self._dft(re[body], im[body])
            for index in params.carrier_indices:
                symbol = complex(
                    fp.q15_to_float(spec_re[index]),
                    fp.q15_to_float(spec_im[index]),
                )
                bits.extend(_demap_quadrant(symbol))
            self.symbols_processed += 1
        return bits


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    if len(sent) != len(received):
        raise ConfigurationError("length mismatch")
    if not sent:
        return 0.0
    errors = sum(1 for a, b in zip(sent, received) if a != b)
    return errors / len(sent)
