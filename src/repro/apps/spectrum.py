"""Spectral-analysis toolkit around the DFT accelerator.

The application layer the paper's 85x DFT headline serves: signal
generation, windowing, accelerated (or software) transforms, magnitude
spectra and peak detection -- everything in the Q15 domain the RAC
speaks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..baselines.software import software_dft_direct, software_fft
from ..sim.errors import ConfigurationError
from ..sw.library import OuessantLibrary
from ..utils import fixedpoint as fp


@dataclass(frozen=True)
class Tone:
    """One sinusoid component of a synthetic signal."""

    frequency: float
    amplitude: float
    phase: float = 0.0


def synthesize(
    tones: Sequence[Tone],
    n: int,
    sample_rate: float,
    noise_rms: float = 0.0,
    seed: int = 0,
) -> Tuple[List[int], List[int]]:
    """Q15 complex baseband signal: sum of tones + white noise."""
    rng = random.Random(seed)
    re: List[int] = []
    im: List[int] = []
    for t in range(n):
        value = sum(
            tone.amplitude * math.sin(
                2 * math.pi * tone.frequency * t / sample_rate + tone.phase
            )
            for tone in tones
        )
        value += rng.gauss(0, noise_rms) if noise_rms else 0.0
        re.append(fp.float_to_q15(value))
        im.append(0)
    return re, im


def hann_window(n: int) -> List[int]:
    """Q15 Hann window coefficients."""
    return [
        fp.float_to_q15(0.5 - 0.5 * math.cos(2 * math.pi * t / (n - 1)))
        for t in range(n)
    ]


def apply_window(
    re: Sequence[int], im: Sequence[int], window: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Pointwise Q15 multiply of a complex signal by a real window."""
    if not (len(re) == len(im) == len(window)):
        raise ConfigurationError("signal/window length mismatch")
    return (
        [fp.q15_mul(x, w) for x, w in zip(re, window)],
        [fp.q15_mul(x, w) for x, w in zip(im, window)],
    )


def magnitude(spec_re: Sequence[int], spec_im: Sequence[int]) -> List[float]:
    """Bin magnitudes of a Q15 spectrum, as floats in [0, ~1]."""
    return [
        math.hypot(fp.q15_to_float(r), fp.q15_to_float(i))
        for r, i in zip(spec_re, spec_im)
    ]


@dataclass(frozen=True)
class Peak:
    """One detected spectral peak."""

    bin: int
    frequency: float
    magnitude: float


def find_peaks(
    magnitudes: Sequence[float],
    sample_rate: float,
    threshold: float = 0.01,
    max_peaks: int = 8,
) -> List[Peak]:
    """Local maxima of the positive-frequency half, above threshold."""
    n = len(magnitudes)
    half = n // 2
    peaks: List[Peak] = []
    for k in range(1, half - 1):
        m = magnitudes[k]
        if m >= threshold and m >= magnitudes[k - 1] and m > magnitudes[k + 1]:
            peaks.append(Peak(k, k * sample_rate / n, m))
    peaks.sort(key=lambda p: -p.magnitude)
    return sorted(peaks[:max_peaks], key=lambda p: p.bin)


class SpectrumAnalyzer:
    """N-point spectrum analyser with a selectable transform backend.

    ``backend`` is one of ``"ocp"`` (the DFT RAC through an
    :class:`OuessantLibrary`), ``"sw-fft"`` or ``"sw-dft"`` (the ISS
    kernels), or ``"golden"`` (the pure fixed-point model).
    """

    def __init__(
        self,
        n: int,
        sample_rate: float,
        backend: str = "golden",
        library: Optional[OuessantLibrary] = None,
        window: bool = False,
    ) -> None:
        if backend not in ("ocp", "sw-fft", "sw-dft", "golden"):
            raise ConfigurationError(f"unknown backend {backend!r}")
        if backend == "ocp" and library is None:
            raise ConfigurationError("the ocp backend needs a library")
        self.n = n
        self.sample_rate = sample_rate
        self.backend = backend
        self.library = library
        self.window = hann_window(n) if window else None
        self.cycles = 0

    def _transform(
        self, re: Sequence[int], im: Sequence[int]
    ) -> Tuple[List[int], List[int]]:
        if self.backend == "ocp":
            assert self.library is not None
            out = self.library.dft(list(re), list(im))
            assert self.library.last_result is not None
            self.cycles += self.library.last_result.total_cycles
            return out
        if self.backend == "sw-fft":
            out, run = software_fft(re, im)
            self.cycles += run.cycles
            return out
        if self.backend == "sw-dft":
            out, run = software_dft_direct(re, im)
            self.cycles += run.cycles
            return out
        return fp.fft_q15(re, im)

    def analyze(
        self, re: Sequence[int], im: Sequence[int]
    ) -> List[Peak]:
        """Window, transform and peak-detect one frame."""
        if len(re) != self.n or len(im) != self.n:
            raise ConfigurationError(
                f"analyser is configured for {self.n}-point frames"
            )
        if self.window is not None:
            re, im = apply_window(re, im, self.window)
        spec_re, spec_im = self._transform(re, im)
        return find_peaks(magnitude(spec_re, spec_im), self.sample_rate)
