"""Application layer: the workloads the paper's accelerators serve."""

from . import jpeg, ofdm, spectrum

__all__ = ["jpeg", "ofdm", "spectrum"]
