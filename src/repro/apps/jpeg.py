"""JPEG-style image codec around the IDCT accelerator.

The paper motivates the IDCT RAC with JPEG decoding; this module is
the decoder pipeline around it: forward DCT + quantization (the
"encoder" producing test bitstreams), zig-zag coefficient ordering,
and a block decoder that can run on the OCP (hardware), on the ISS
software kernel, or on the pure golden model -- all bit-identical,
since they share the fixed-point arithmetic.

Entropy coding is out of scope (it never touches the accelerator);
blocks are carried as plain coefficient arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.software import software_idct
from ..sim.errors import ConfigurationError
from ..sw.library import OuessantLibrary
from ..utils.fixedpoint import idct2_q15

#: JPEG Annex K luminance quantization table
LUMA_QUANT = [
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
]


def zigzag_order() -> List[Tuple[int, int]]:
    """The 64 (row, col) pairs in JPEG zig-zag order."""
    order: List[Tuple[int, int]] = []
    for s in range(15):
        diag = [(r, s - r) for r in range(8) if 0 <= s - r < 8]
        order.extend(diag if s % 2 else reversed(diag))
    return order


_ZIGZAG = zigzag_order()


def to_zigzag(block: Sequence[Sequence[int]]) -> List[int]:
    """8x8 block -> 64-entry zig-zag vector."""
    return [block[r][c] for r, c in _ZIGZAG]


def from_zigzag(vector: Sequence[int]) -> List[List[int]]:
    """64-entry zig-zag vector -> 8x8 block."""
    if len(vector) != 64:
        raise ConfigurationError(f"expected 64 coefficients, got {len(vector)}")
    block = [[0] * 8 for _ in range(8)]
    for value, (r, c) in zip(vector, _ZIGZAG):
        block[r][c] = int(value)
    return block


def _dct_basis() -> np.ndarray:
    basis = np.zeros((8, 8))
    for n in range(8):
        for k in range(8):
            alpha = np.sqrt(1 / 8) if k == 0 else np.sqrt(2 / 8)
            basis[n, k] = alpha * np.cos((2 * n + 1) * k * np.pi / 16)
    return basis


_BASIS = _dct_basis()


def quality_scaled_table(quality: int) -> List[List[int]]:
    """IJG quality scaling (1..100) of the luminance table."""
    if not 1 <= quality <= 100:
        raise ConfigurationError(f"quality {quality} outside [1, 100]")
    scale = 5000 / quality if quality < 50 else 200 - 2 * quality
    table = []
    for row in LUMA_QUANT:
        table.append([
            int(min(255, max(1, (v * scale + 50) // 100))) for v in row
        ])
    return table


class EncodedImage:
    """Quantized DCT coefficients of one greyscale image."""

    def __init__(
        self,
        height: int,
        width: int,
        quant: List[List[int]],
        blocks: Dict[Tuple[int, int], List[int]],
    ) -> None:
        self.height = height
        self.width = width
        self.quant = quant
        self.blocks = blocks  # (by, bx) -> zig-zag coefficient vector

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def encode(image: np.ndarray, quality: int = 75) -> EncodedImage:
    """Forward DCT + quantization, 8x8 block by block.

    ``image`` must be a 2-D array with dimensions divisible by 8,
    values in roughly [-128, 127] (level-shifted samples).
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or image.shape[0] % 8 or image.shape[1] % 8:
        raise ConfigurationError(
            "image must be 2-D with dimensions divisible by 8"
        )
    quant = quality_scaled_table(quality)
    quant_arr = np.array(quant, dtype=float)
    blocks: Dict[Tuple[int, int], List[int]] = {}
    for by in range(0, image.shape[0], 8):
        for bx in range(0, image.shape[1], 8):
            tile = image[by:by + 8, bx:bx + 8]
            coefs = _BASIS.T @ tile @ _BASIS
            quantized = np.round(coefs / quant_arr).astype(int)
            blocks[(by, bx)] = to_zigzag(quantized.tolist())
    return EncodedImage(image.shape[0], image.shape[1], quant, blocks)


class JPEGDecoder:
    """Block decoder with selectable IDCT backend.

    Parameters
    ----------
    library:
        When given, blocks are decoded on the IDCT RAC through this
        :class:`~repro.sw.library.OuessantLibrary` ("hardware").  When
        ``None``, the pure golden model is used.
    use_iss:
        Decode on the instruction-set simulator's software kernel
        instead (the SW baseline); mutually exclusive with ``library``.
    """

    def __init__(
        self,
        library: Optional[OuessantLibrary] = None,
        use_iss: bool = False,
    ) -> None:
        if library is not None and use_iss:
            raise ConfigurationError("choose one backend, not both")
        self.library = library
        self.use_iss = use_iss
        self.cycles = 0
        self.blocks_decoded = 0

    def _idct(self, block: List[List[int]]) -> List[List[int]]:
        if self.library is not None:
            result = self.library.idct(block)
            assert self.library.last_result is not None
            self.cycles += self.library.last_result.total_cycles
            return result
        if self.use_iss:
            result, run = software_idct(block)
            self.cycles += run.cycles
            return result
        return idct2_q15(block)

    def decode(self, encoded: EncodedImage) -> np.ndarray:
        """Dequantize + IDCT every block; returns the decoded image."""
        image = np.zeros((encoded.height, encoded.width), dtype=int)
        quant = np.array(encoded.quant, dtype=int)
        for (by, bx), vector in encoded.blocks.items():
            coefs = np.array(from_zigzag(vector), dtype=int) * quant
            tile = self._idct(coefs.tolist())
            image[by:by + 8, bx:bx + 8] = tile
            self.blocks_decoded += 1
        return image


def psnr(reference: np.ndarray, decoded: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB."""
    mse = float(np.mean((np.asarray(reference, dtype=float)
                         - np.asarray(decoded, dtype=float)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def test_card(size: int = 64) -> np.ndarray:
    """Synthetic greyscale test image (level-shifted to [-128, 127])."""
    y, x = np.mgrid[0:size, 0:size]
    image = 40 * np.sin(2 * np.pi * x / size) + 30 * np.cos(
        2 * np.pi * y / (size / 2)
    )
    disc = ((x - size / 2) ** 2 + (y - size / 2) ** 2) < (size / 4) ** 2
    image = image + 50 * disc
    return np.clip(image, -128, 127)
